#include "obs/telemetry.hh"

#include <algorithm>
#include <cstdio>

#include "util/json.hh"

namespace pmtest::obs
{

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::CaptureSeal:
        return "capture.seal";
      case Stage::PoolSubmit:
        return "pool.submit";
      case Stage::PoolStall:
        return "pool.stall";
      case Stage::StealScan:
        return "pool.steal_scan";
      case Stage::IngestDecode:
        return "ingest.decode";
      case Stage::IngestSubmit:
        return "ingest.submit";
      case Stage::EngineCheck:
        return "engine.check";
      case Stage::ReportMerge:
        return "report.merge";
      case Stage::ReportCanonicalize:
        return "report.canonicalize";
      case Stage::SourceOpen:
        return "source.open";
      case Stage::HintReplay:
        return "hint.replay";
      case Stage::OracleEnumerate:
        return "oracle.enumerate";
    }
    return "unknown";
}

const char *
counterName(Counter counter)
{
    switch (counter) {
      case Counter::TracesSealed:
        return "traces_sealed";
      case Counter::OpsSealed:
        return "ops_sealed";
      case Counter::TracesSubmitted:
        return "traces_submitted";
      case Counter::BatchesSubmitted:
        return "batches_submitted";
      case Counter::SubmitStalls:
        return "submit_stalls";
      case Counter::StealScans:
        return "steal_scans";
      case Counter::TracesStolen:
        return "traces_stolen";
      case Counter::ChunksDecoded:
        return "chunks_decoded";
      case Counter::TracesDecoded:
        return "traces_decoded";
      case Counter::TracesChecked:
        return "traces_checked";
      case Counter::OpsChecked:
        return "ops_checked";
      case Counter::ReportsMerged:
        return "reports_merged";
      case Counter::SourcesIngested:
        return "sources_ingested";
      case Counter::HintsSynthesized:
        return "hints_synthesized";
      case Counter::HintsVerified:
        return "hints_verified";
      case Counter::OracleStatesTested:
        return "oracle_states_tested";
      case Counter::OracleStatesCovered:
        return "oracle_states_covered";
      case Counter::OracleMemoHits:
        return "oracle_memo_hits";
      case Counter::WatchdogStalls:
        return "watchdog_stalls";
      case Counter::MetricsScrapes:
        return "metrics_scrapes";
      case Counter::WorkersSpawned:
        return "workers_spawned";
      case Counter::WorkersFailed:
        return "workers_failed";
    }
    return "unknown";
}

namespace
{

uint64_t
saturatingSub(uint64_t a, uint64_t b)
{
    return a > b ? a - b : 0;
}

} // namespace

uint64_t
HistogramSnapshot::bucketLowerBound(size_t index)
{
    if (index == 0)
        return 0;
    if (index >= 64)
        return uint64_t{1} << 63;
    return uint64_t{1} << (index - 1);
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    for (size_t i = 0; i < kHistogramBuckets; i++)
        buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
    max = std::max(max, other.max);
}

void
HistogramSnapshot::subtract(const HistogramSnapshot &baseline)
{
    for (size_t i = 0; i < kHistogramBuckets; i++)
        buckets[i] = saturatingSub(buckets[i], baseline.buckets[i]);
    count = saturatingSub(count, baseline.count);
    sum = saturatingSub(sum, baseline.sum);
    // max cannot be windowed; keep the raw upper bound unless the
    // window is empty.
    if (count == 0)
        max = 0;
}

double
HistogramSnapshot::quantileNs(double p) const
{
    if (count == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(count);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kHistogramBuckets; i++) {
        if (buckets[i] == 0)
            continue;
        const uint64_t before = cumulative;
        cumulative += buckets[i];
        if (static_cast<double>(cumulative) < target)
            continue;
        // Interpolate within the hit bucket, assuming a uniform
        // distribution across its [lo, hi) span; the last bucket with
        // samples is clamped to the observed max instead of 2^i.
        const double lo =
            static_cast<double>(bucketLowerBound(i));
        double hi = i >= 64
                        ? static_cast<double>(max)
                        : static_cast<double>(uint64_t{1} << i);
        if (cumulative == count && max > 0)
            hi = std::min(hi, static_cast<double>(max));
        if (hi < lo)
            hi = lo;
        const double inside =
            (target - static_cast<double>(before)) /
            static_cast<double>(buckets[i]);
        return lo + (hi - lo) * inside;
    }
    return static_cast<double>(max);
}

double
HistogramSnapshot::meanNs() const
{
    if (count == 0)
        return 0;
    return static_cast<double>(sum) / static_cast<double>(count);
}

HistogramSnapshot
LatencyHistogram::snapshot() const
{
    HistogramSnapshot snap;
    for (size_t i = 0; i < kHistogramBuckets; i++)
        snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
    return snap;
}

void
MetricsSnapshot::subtract(const MetricsSnapshot &baseline)
{
    for (size_t c = 0; c < kCounterCount; c++)
        counters[c] = saturatingSub(counters[c], baseline.counters[c]);
    for (size_t h = 0; h < kStageCount; h++)
        stages[h].subtract(baseline.stages[h]);
    spansRecorded = saturatingSub(spansRecorded,
                                  baseline.spansRecorded);
    spansDropped = saturatingSub(spansDropped, baseline.spansDropped);
}

Telemetry &
Telemetry::instance()
{
    // Leaky singleton: worker threads may record right up to process
    // exit, so the registry must outlive every static destructor.
    static Telemetry *registry = new Telemetry();
    return *registry;
}

Telemetry::ThreadSlot &
Telemetry::slot()
{
    thread_local ThreadSlot *cached = nullptr;
    if (cached)
        return *cached;
    auto owned = std::make_unique<ThreadSlot>();
    ThreadSlot *raw = owned.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        raw->tid = static_cast<uint32_t>(slots_.size() + 1);
        slots_.push_back(std::move(owned));
    }
    cached = raw;
    return *raw;
}

void
Telemetry::addCount(Counter c, uint64_t n)
{
    slot().counters[static_cast<size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
}

void
Telemetry::recordSpan(Stage stage, uint64_t start_ns, uint64_t dur_ns)
{
    ThreadSlot &s = slot();
    s.stages[static_cast<size_t>(stage)].record(dur_ns);
    if (!spansOn_.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(s.spanMutex);
    const uint64_t every =
        std::max<uint64_t>(1, sampleEvery_.load(std::memory_order_relaxed));
    if (s.spanSeq++ % every != 0)
        return;
    if (s.spans.size() >= kMaxSpansPerThread) {
        s.spansDropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    s.spans.push_back(SpanEvent{start_ns, dur_ns, stage});
}

void
Telemetry::setThreadName(std::string name)
{
    ThreadSlot &s = slot();
    std::lock_guard<std::mutex> lock(s.spanMutex);
    s.name = std::move(name);
}

void
Telemetry::enableSpans(uint64_t sample_every)
{
    sampleEvery_.store(std::max<uint64_t>(1, sample_every),
                       std::memory_order_relaxed);
    spansOn_.store(true, std::memory_order_relaxed);
}

void
Telemetry::disableSpans()
{
    spansOn_.store(false, std::memory_order_relaxed);
}

MetricsSnapshot
Telemetry::mergedLocked() const
{
    MetricsSnapshot snap;
    snap.threads = static_cast<uint32_t>(slots_.size());
    for (const auto &s : slots_) {
        for (size_t c = 0; c < kCounterCount; c++)
            snap.counters[c] +=
                s->counters[c].load(std::memory_order_relaxed);
        for (size_t h = 0; h < kStageCount; h++)
            snap.stages[h].merge(s->stages[h].snapshot());
        snap.spansDropped +=
            s->spansDropped.load(std::memory_order_relaxed);
        std::lock_guard<std::mutex> span_lock(s->spanMutex);
        snap.spansRecorded += s->spans.size();
    }
    return snap;
}

MetricsSnapshot
Telemetry::metrics() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap = mergedLocked();
    snap.subtract(baseline_);
    snap.snapshotNs = monotonicNanos() - epochNs_;
    return snap;
}

void
Telemetry::writeMetricsJson(JsonWriter &w) const
{
    writeMetricsJson(w, metrics());
}

void
Telemetry::writeMetricsJson(JsonWriter &w,
                            const MetricsSnapshot &snap) const
{
    w.beginObject();
    w.member("compiled", PMTEST_TELEMETRY_ENABLED != 0);
    w.member("snapshot_ns", snap.snapshotNs);
    w.member("threads", snap.threads);

    w.key("counters").beginObject();
    for (size_t c = 0; c < kCounterCount; c++)
        w.member(counterName(static_cast<Counter>(c)),
                 snap.counters[c]);
    w.endObject();

    w.key("stages").beginObject();
    for (size_t h = 0; h < kStageCount; h++) {
        const HistogramSnapshot &hist = snap.stages[h];
        w.key(stageName(static_cast<Stage>(h))).beginObject();
        w.member("count", hist.count);
        w.member("sum_ns", hist.sum);
        w.member("max_ns", hist.max);
        w.member("mean_ns", hist.meanNs(), 1);
        w.member("p50_ns", hist.quantileNs(0.50), 1);
        w.member("p95_ns", hist.quantileNs(0.95), 1);
        w.member("p99_ns", hist.quantileNs(0.99), 1);
        w.endObject();
    }
    w.endObject();

    w.key("spans").beginObject();
    w.member("enabled", spansEnabled());
    w.member("sample_every",
             sampleEvery_.load(std::memory_order_relaxed));
    w.member("recorded", snap.spansRecorded);
    w.member("dropped", snap.spansDropped);
    w.endObject();

    w.endObject();
}

void
Telemetry::writeTraceEventsJson(JsonWriter &w) const
{
    w.beginObject();
    w.member("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();

    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &s : slots_) {
        std::lock_guard<std::mutex> span_lock(s->spanMutex);
        // Thread-name metadata first, so viewers label the row even
        // when the thread recorded no sampled spans.
        w.beginObject();
        w.member("name", "thread_name");
        w.member("ph", "M");
        w.member("ts", uint64_t{0});
        w.member("pid", 1);
        w.member("tid", s->tid);
        w.key("args").beginObject();
        w.member("name", s->name.empty()
                             ? "thread-" + std::to_string(s->tid)
                             : s->name);
        w.endObject();
        w.endObject();
        for (const SpanEvent &e : s->spans) {
            w.beginObject();
            w.member("name", stageName(e.stage));
            w.member("cat", "pmtest");
            w.member("ph", "X");
            // Trace-event timestamps are microseconds; keep ns
            // resolution in the fraction.
            w.member("ts",
                     static_cast<double>(e.startNs - epochNs_) / 1e3,
                     3);
            w.member("dur", static_cast<double>(e.durNs) / 1e3, 3);
            w.member("pid", 1);
            w.member("tid", s->tid);
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();
}

bool
Telemetry::writeTraceEventsFile(const std::string &path,
                                std::string *error) const
{
    JsonWriter w;
    writeTraceEventsJson(w);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        if (error)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    const std::string &doc = w.str();
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (!ok && error)
        *error = "short write to " + path;
    return ok;
}

void
Telemetry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Baseline subtraction instead of destructive zeroing: recorders
    // are never written to, so a concurrent fetch_add lands either
    // before the baseline capture (absorbed into the baseline) or
    // after it (reported by the next metrics() call) — never lost,
    // and never a store racing an increment.
    baseline_ = mergedLocked();
    for (auto &s : slots_) {
        std::lock_guard<std::mutex> span_lock(s->spanMutex);
        s->spans.clear();
        s->spanSeq = 0;
    }
    // Spans really are cleared (owner-append is spanMutex-guarded),
    // so the recorded tally restarts from zero rather than being
    // baseline-subtracted.
    baseline_.spansRecorded = 0;
}

} // namespace pmtest::obs
