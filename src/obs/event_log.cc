#include "obs/event_log.hh"

#include <cerrno>
#include <chrono>

#include "obs/telemetry.hh"
#include "util/json.hh"

namespace pmtest::obs
{

const char *
eventSeverityName(EventSeverity severity)
{
    switch (severity) {
    case EventSeverity::Info:
        return "info";
    case EventSeverity::Warn:
        return "warn";
    case EventSeverity::Error:
        return "error";
    }
    return "info";
}

bool
EventLog::open(const std::string &path, std::string *error)
{
    close();
    std::lock_guard<std::mutex> lock(mutex_);
    if (path == "-") {
        file_ = stdout;
        ownsFile_ = false;
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        if (error)
            *error = "cannot write " + path;
        return false;
    }
    file_ = f;
    ownsFile_ = true;
    return true;
}

void
EventLog::emit(EventSeverity severity, const char *type,
               const std::function<void(JsonWriter &)> &fields)
{
#if PMTEST_TELEMETRY_ENABLED
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;
    const uint64_t wall_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    // Read the epoch before the clock: if this emit is the process's
    // first telemetry touch, instance() constructs here and captures
    // its epoch *now* — sampling monotonicNanos() first would make
    // the subtraction underflow.
    const uint64_t epoch = Telemetry::instance().epochNanos();
    const uint64_t now = monotonicNanos();
    const uint64_t mono_ns = now > epoch ? now - epoch : 0;

    JsonWriter w;
    w.beginObject();
    w.member("ts_ms", wall_ms);
    w.member("mono_ns", mono_ns);
    w.member("severity", eventSeverityName(severity));
    w.member("type", type);
    if (fields)
        fields(w);
    w.endObject();

    std::fwrite(w.str().data(), 1, w.str().size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
#else
    (void)severity;
    (void)type;
    (void)fields;
#endif
}

void
EventLog::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;
    std::fflush(file_);
    if (ownsFile_)
        std::fclose(file_);
    file_ = nullptr;
    ownsFile_ = false;
}

} // namespace pmtest::obs
