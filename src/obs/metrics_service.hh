/**
 * @file
 * MetricsService: the one object a tool owns for its whole live
 * observability surface. Construct it with the parsed flag values,
 * call start() once the gauge samplers exist, freeze() before the
 * sampled pool/sources are destroyed, and stop() (or let the
 * destructor) at exit:
 *
 *   obs::MetricsService service;
 *   obs::ServiceOptions so;
 *   so.tool = "pmtest_check";
 *   so.metricsPort = parsed_port;      // -1 = no server
 *   so.eventLogPath = parsed_path;     // "" = no event log
 *   if (!service.start(so, &error)) →  exit 2 (flag-error contract)
 *
 * start() opens the event log FIRST and fails fast on an unwritable
 * path — that validation happens in every build configuration, so
 * `--event-log=/bad/path` exits 2 even under -DPMTEST_TELEMETRY=OFF.
 * The publisher and HTTP server, by contrast, are gated on
 * PMTEST_TELEMETRY_ENABLED: an OFF build accepts the flags, notes on
 * stderr that live metrics are compiled out, and runs nothing —
 * keeping hot paths and verdicts identical to a run without flags.
 *
 * Routes served: /metrics (Prometheus text exposition) and
 * /metrics.json (pmtest-metrics-v1). Every served scrape bumps
 * Counter::MetricsScrapes.
 */

#ifndef PMTEST_OBS_METRICS_SERVICE_HH
#define PMTEST_OBS_METRICS_SERVICE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "obs/event_log.hh"
#include "obs/metrics_http.hh"
#include "obs/metrics_publisher.hh"

namespace pmtest::obs
{

/** Parsed observability flag values for one tool run. */
struct ServiceOptions
{
    std::string tool = "pmtest";
    int32_t metricsPort = -1;   ///< -1 = no HTTP server; 0 = ephemeral
    uint64_t intervalMs = 1000; ///< publisher tick period
    uint32_t stallTicks = 3;    ///< watchdog threshold, in ticks
    bool progress = false;      ///< --progress TTY line
    std::string eventLogPath;   ///< "" = no event log; "-" = stdout
    std::function<PoolGauges()> poolSampler;
    std::function<IngestGauges()> ingestSampler;
};

/** Owns the event log, publisher, and scrape server of one run. */
class MetricsService
{
  public:
    MetricsService() = default;
    ~MetricsService() { stop(); }

    MetricsService(const MetricsService &) = delete;
    MetricsService &operator=(const MetricsService &) = delete;

    /**
     * Open the event log, start the publisher, and bind the scrape
     * server. @return false with @p error set ("cannot write <path>",
     * "cannot bind ...") on failure — callers exit 2.
     */
    bool start(ServiceOptions options, std::string *error = nullptr);

    /** True when anything (event log, publisher, server) is live. */
    bool active() const { return publisher_ || eventLog_.active(); }

    /** The bound scrape port; 0 when no server is running. */
    uint16_t port() const
    {
        return server_ ? server_->port() : 0;
    }

    /** The event log (inactive singleton when --event-log unset). */
    EventLog &eventLog() { return eventLog_; }

    /** The publisher; null without telemetry or before start(). */
    MetricsPublisher *publisher() { return publisher_.get(); }

    /**
     * Final-sample the publisher and detach its gauge samplers; the
     * server keeps answering scrapes with the frozen sample. Call
     * before destroying the pool/sources the samplers capture.
     */
    void freeze();

    /** Stop the server and publisher and close the event log. */
    void stop();

  private:
    EventLog eventLog_;
    std::unique_ptr<MetricsPublisher> publisher_;
    std::unique_ptr<MetricsHttpServer> server_;
};

} // namespace pmtest::obs

#endif // PMTEST_OBS_METRICS_SERVICE_HH
