/**
 * @file
 * The telemetry subsystem: low-overhead, per-thread observability for
 * the whole load→verdict pipeline.
 *
 * Three primitives, one registry:
 *
 *  - **Counters** (enum-indexed, per-thread, lock-free): each thread
 *    owns a private slot of relaxed atomics; a hot-path increment is
 *    one uncontended fetch_add on a cache line no other thread
 *    writes. Snapshots sum across slots.
 *  - **Latency histograms** (log2-bucketed): span durations land in
 *    bucket ⌈log2(ns)⌉, so 65 fixed buckets cover 1 ns … 2^64 ns with
 *    no allocation and no locks. Per-thread histograms merge into one
 *    snapshot from which p50/p95/p99 are interpolated.
 *  - **Spans** (Chrome trace-event / Perfetto): every pipeline stage
 *    (capture seal, pool submit, backpressure stall, steal scan,
 *    ingest decode, engine check, report merge/canonicalize) brackets
 *    itself with a SpanScope. Span *durations* always feed the stage
 *    histogram; the timeline *events* are only collected when
 *    explicitly enabled (`Telemetry::enableSpans`), optionally
 *    sampled 1-in-N, and export as a JSON file that loads directly in
 *    chrome://tracing or https://ui.perfetto.dev.
 *
 * Compile-out: building with -DPMTEST_TELEMETRY_ENABLED=0 (CMake
 * option PMTEST_TELEMETRY=OFF) turns the instrumentation hooks —
 * SpanScope, count(), nameThread() — into empty constexpr inlines, so
 * the hot paths contain zero telemetry code. The registry and
 * histogram types themselves stay available (snapshots simply read
 * all-zero), which keeps `pmtest_check --metrics-json` valid and the
 * unit tests compilable in both configurations.
 *
 * Verdict neutrality: nothing in this module reads or writes checking
 * state, so reports are byte-identical with telemetry on, sampled, or
 * compiled out (tested by TelemetryTest.VerdictUnchanged and the
 * PMTEST_TELEMETRY=OFF CI leg).
 */

#ifndef PMTEST_OBS_TELEMETRY_HH
#define PMTEST_OBS_TELEMETRY_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.hh"

#ifndef PMTEST_TELEMETRY_ENABLED
#define PMTEST_TELEMETRY_ENABLED 1
#endif

namespace pmtest
{
class JsonWriter;
}

namespace pmtest::obs
{

/**
 * Pipeline stages that emit spans. Each stage also owns a latency
 * histogram of its span durations.
 */
enum class Stage : uint8_t
{
    CaptureSeal,       ///< TraceCapture::seal — buffer → immutable Trace
    PoolSubmit,        ///< EnginePool::submitBatch enqueue
    PoolStall,         ///< producer blocked on full queues (backpressure)
    StealScan,         ///< idle worker scanning peers for work to steal
    IngestDecode,      ///< decoder team: one claimed chunk of traces
    IngestSubmit,      ///< decoder flushing a batch into the pool
    EngineCheck,       ///< Engine::check — one trace through the kernel
    ReportMerge,       ///< merging a per-trace report into the aggregate
    ReportCanonicalize,///< sorting the merged report into canonical order
    SourceOpen,        ///< opening/validating one trace source (file)
    HintReplay,        ///< replaying one patched trace to verify a hint
    OracleEnumerate    ///< crash-state oracle: one crash point explored
};

inline constexpr size_t kStageCount = 12;

/** Stable span/metric name of @p stage (e.g. "engine.check"). */
const char *stageName(Stage stage);

/** Pipeline event counters. */
enum class Counter : uint8_t
{
    TracesSealed,    ///< TraceCapture::seal calls
    OpsSealed,       ///< PM ops in sealed traces
    TracesSubmitted, ///< traces accepted by EnginePool::submit*
    BatchesSubmitted,///< submitBatch calls
    SubmitStalls,    ///< producer-side backpressure stalls
    StealScans,      ///< successful steal sweeps
    TracesStolen,    ///< traces moved by stealing
    ChunksDecoded,   ///< ingest decoder chunk claims
    TracesDecoded,   ///< traces decoded from a file
    TracesChecked,   ///< traces through Engine::check
    OpsChecked,      ///< PM ops through Engine::check
    ReportsMerged,   ///< per-trace reports merged into aggregates
    SourcesIngested, ///< trace sources drained to End by ingest()
    HintsSynthesized,///< findings recorded with a valid FixHint
    HintsVerified,   ///< hints whose patched replay came back clean
    OracleStatesTested, ///< recovery verdicts the oracle obtained
    OracleStatesCovered,///< crash states those verdicts account for
    OracleMemoHits,     ///< verdicts served from the predicate memo
    WatchdogStalls,     ///< stall episodes the metrics watchdog flagged
    MetricsScrapes,     ///< /metrics + /metrics.json requests served
    WorkersSpawned,     ///< distributed-check worker processes forked
    WorkersFailed       ///< workers that exited abnormally (status > 1)
};

inline constexpr size_t kCounterCount = 22;

/** Stable metric name of @p counter (e.g. "traces_checked"). */
const char *counterName(Counter counter);

inline constexpr size_t kHistogramBuckets = 65;

/**
 * Mergeable point-in-time copy of one histogram. Bucket 0 counts
 * zero-duration samples; bucket i (i >= 1) counts samples in
 * [2^(i-1), 2^i) nanoseconds.
 */
struct HistogramSnapshot
{
    std::array<uint64_t, kHistogramBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;

    /** Accumulate @p other into this snapshot (cross-thread merge). */
    void merge(const HistogramSnapshot &other);

    /**
     * Saturating-subtract @p baseline from this snapshot — the
     * baseline-reset primitive: a snapshot minus an earlier snapshot
     * of the same histogram is the activity in between. The observed
     * max cannot be re-derived for a window, so it stays as the raw
     * upper bound (and is zeroed when the window holds no samples).
     */
    void subtract(const HistogramSnapshot &baseline);

    /**
     * Approximate @p p quantile (0 < p <= 1) in nanoseconds, linearly
     * interpolated inside the hit bucket. 0 when empty.
     */
    double quantileNs(double p) const;

    /** Mean sample in nanoseconds (exact; from sum/count). */
    double meanNs() const;

    /** Inclusive lower bound of bucket @p index in nanoseconds. */
    static uint64_t bucketLowerBound(size_t index);
};

/**
 * Lock-free log2-bucketed latency histogram. record() is wait-free
 * (one relaxed fetch_add per field); any thread may record, any
 * thread may snapshot.
 */
class LatencyHistogram
{
  public:
    /** Bucket index a sample of @p nanos lands in. */
    static size_t
    bucketIndex(uint64_t nanos)
    {
        return static_cast<size_t>(std::bit_width(nanos));
    }

    /** Record one sample. */
    void
    record(uint64_t nanos)
    {
        buckets_[bucketIndex(nanos)].fetch_add(
            1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(nanos, std::memory_order_relaxed);
        uint64_t seen = max_.load(std::memory_order_relaxed);
        while (nanos > seen &&
               !max_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
        }
    }

    /** Number of samples recorded so far. */
    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Copy the current state into a mergeable snapshot. */
    HistogramSnapshot snapshot() const;

  private:
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
};

/** One collected span, relative to the registry epoch. */
struct SpanEvent
{
    uint64_t startNs; ///< monotonicNanos() at span open
    uint64_t durNs;   ///< span duration
    Stage stage;
};

/** Merged cross-thread view of all counters and stage histograms. */
struct MetricsSnapshot
{
    std::array<uint64_t, kCounterCount> counters{};
    std::array<HistogramSnapshot, kStageCount> stages{};
    uint64_t spansRecorded = 0;
    uint64_t spansDropped = 0;
    uint32_t threads = 0;

    /**
     * Capture time, in nanoseconds since the registry epoch
     * (Telemetry::epochNanos()). Two snapshots of the same registry
     * are directly comparable, which is what makes rate computation
     * between scrapes well-defined.
     */
    uint64_t snapshotNs = 0;

    /**
     * Saturating-subtract @p baseline (counters, histograms, span
     * accounting) — the window of activity since @p baseline was
     * taken. threads and snapshotNs keep this snapshot's values.
     */
    void subtract(const MetricsSnapshot &baseline);

    uint64_t
    counter(Counter c) const
    {
        return counters[static_cast<size_t>(c)];
    }

    const HistogramSnapshot &
    stage(Stage s) const
    {
        return stages[static_cast<size_t>(s)];
    }
};

/**
 * Process-wide telemetry registry. Threads register lazily on first
 * use and keep a private slot for life-of-process (a thread that
 * exits leaves its totals behind for the final snapshot).
 */
class Telemetry
{
  public:
    /** Per-thread span buffer cap; overflow counts as dropped. */
    static constexpr size_t kMaxSpansPerThread = size_t{1} << 20;

    /** The process-wide registry (leaky singleton; never destroyed). */
    static Telemetry &instance();

    /** Add @p n to @p c on the calling thread's slot. Lock-free. */
    void addCount(Counter c, uint64_t n = 1);

    /**
     * Record one completed span: always feeds the stage histogram;
     * appends a timeline event only when span collection is enabled
     * and this sample survives 1-in-N sampling.
     */
    void recordSpan(Stage stage, uint64_t start_ns, uint64_t dur_ns);

    /** Label the calling thread in exported timelines. */
    void setThreadName(std::string name);

    /**
     * Start collecting timeline events, keeping every @p sample_every
     * -th span per thread (1 = all). Histograms and counters are
     * always live and unaffected by this switch.
     */
    void enableSpans(uint64_t sample_every = 1);

    /** Stop collecting timeline events (already-collected ones stay). */
    void disableSpans();

    /** Whether timeline events are currently collected. */
    bool
    spansEnabled() const
    {
        return spansOn_.load(std::memory_order_relaxed);
    }

    /**
     * Merged counters + histograms across all threads ever seen,
     * relative to the last resetForTest() baseline, stamped with the
     * capture time (snapshotNs).
     */
    MetricsSnapshot metrics() const;

    /**
     * Append the "telemetry" metrics object (compiled flag, capture
     * timestamp, counters, per-stage histogram quantiles, span
     * accounting) to @p w. The writer must be positioned where an
     * object value is legal.
     */
    void writeMetricsJson(JsonWriter &w) const;

    /** Same, but rendering the already-taken snapshot @p snap. */
    void writeMetricsJson(JsonWriter &w,
                          const MetricsSnapshot &snap) const;

    /**
     * Append the full Chrome trace-event document (an object with a
     * "traceEvents" array of "X" duration events plus "M" thread-name
     * metadata) to @p w.
     */
    void writeTraceEventsJson(JsonWriter &w) const;

    /**
     * Write the trace-event document to @p path; loadable in
     * chrome://tracing and ui.perfetto.dev.
     * @return false (with @p error set) when the file cannot be written.
     */
    bool writeTraceEventsFile(const std::string &path,
                              std::string *error = nullptr) const;

    /**
     * Rebase metrics() to zero and drop collected spans. Test
     * support. Implemented as baseline subtraction — the current
     * merged totals become the new baseline and subsequent snapshots
     * report only activity after this call — so it is safe against
     * concurrently recording threads (no destructive store ever races
     * a recorder's fetch_add; a recorder racing the baseline capture
     * lands either before the baseline or after it, never lost).
     */
    void resetForTest();

    /** monotonicNanos() origin of exported span timestamps. */
    uint64_t epochNanos() const { return epochNs_; }

  private:
    struct ThreadSlot
    {
        std::array<std::atomic<uint64_t>, kCounterCount> counters{};
        std::array<LatencyHistogram, kStageCount> stages;
        std::atomic<uint64_t> spansDropped{0};

        std::mutex spanMutex; ///< owner appends, exporters read
        std::vector<SpanEvent> spans;
        uint64_t spanSeq = 0; ///< sampling position, owner-only
        std::string name;     ///< guarded by spanMutex
        uint32_t tid = 0;     ///< 1-based registration order
    };

    Telemetry() : epochNs_(monotonicNanos()) {}

    /** The calling thread's slot, registering it on first use. */
    ThreadSlot &slot();

    /** Merge all slots into one raw snapshot. Caller holds mutex_. */
    MetricsSnapshot mergedLocked() const;

    mutable std::mutex mutex_; ///< guards slots_ growth and baseline_
    std::vector<std::unique_ptr<ThreadSlot>> slots_;
    MetricsSnapshot baseline_; ///< subtracted by metrics()
    std::atomic<bool> spansOn_{false};
    std::atomic<uint64_t> sampleEvery_{1};
    uint64_t epochNs_;
};

// ---------------------------------------------------------------------------
// Instrumentation hooks. These — not the registry above — are what the
// pipeline calls, and what PMTEST_TELEMETRY=OFF compiles down to nothing.
// ---------------------------------------------------------------------------

#if PMTEST_TELEMETRY_ENABLED

/** RAII span: times its scope and records it at destruction. */
class SpanScope
{
  public:
    explicit SpanScope(Stage stage)
        : stage_(stage), start_(monotonicNanos())
    {
    }

    ~SpanScope()
    {
        Telemetry::instance().recordSpan(
            stage_, start_, monotonicNanos() - start_);
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    Stage stage_;
    uint64_t start_;
};

/** Hot-path counter increment. */
inline void
count(Counter c, uint64_t n = 1)
{
    Telemetry::instance().addCount(c, n);
}

/** Label the calling thread in exported timelines. */
inline void
nameThread(std::string name)
{
    Telemetry::instance().setThreadName(std::move(name));
}

#else // !PMTEST_TELEMETRY_ENABLED — zero code in hot paths

class SpanScope
{
  public:
    explicit constexpr SpanScope(Stage) {}
    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;
};

inline void
count(Counter, uint64_t = 1)
{
}

inline void
nameThread(std::string)
{
}

#endif // PMTEST_TELEMETRY_ENABLED

} // namespace pmtest::obs

#endif // PMTEST_OBS_TELEMETRY_HH
