#include "obs/metrics_http.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pmtest::obs
{

namespace
{

/** Write all of @p data, tolerating short writes and EINTR. */
void
writeAll(int fd, const char *data, size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // client went away; nothing to salvage
        }
        data += static_cast<size_t>(n);
        len -= static_cast<size_t>(n);
    }
}

} // namespace

bool
MetricsHttpServer::start(uint16_t port, HttpHandler handler,
                         std::string *error)
{
    stop();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        if (error)
            *error = "cannot bind 127.0.0.1:" + std::to_string(port) +
                     ": " + std::strerror(errno);
        ::close(fd);
        return false;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        if (error)
            *error = std::string("getsockname: ") +
                     std::strerror(errno);
        ::close(fd);
        return false;
    }
    port_ = ntohs(addr.sin_port);

    listenFd_ = fd;
    handler_ = std::move(handler);
    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
MetricsHttpServer::stop()
{
    if (!running_.load(std::memory_order_acquire))
        return;
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    running_.store(false, std::memory_order_release);
}

void
MetricsHttpServer::serveLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
        if (ready <= 0)
            continue; // timeout (stop check) or EINTR
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        serveOne(client);
        ::close(client);
    }
}

void
MetricsHttpServer::serveOne(int client)
{
    // One read is enough for any scraper's GET line + headers; we only
    // need the request line and ignore everything after it.
    char buf[2048];
    const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    if (n <= 0)
        return;
    buf[n] = '\0';

    std::string request(buf);
    std::string path;
    if (request.rfind("GET ", 0) == 0) {
        const size_t end = request.find(' ', 4);
        if (end != std::string::npos)
            path = request.substr(4, end - 4);
    }

    std::string body;
    std::string content_type = "text/plain; charset=utf-8";
    bool found = false;
    if (!path.empty() && handler_)
        found = handler_(path, &body, &content_type);

    std::string response;
    if (found) {
        response = "HTTP/1.0 200 OK\r\nContent-Type: " + content_type +
                   "\r\nContent-Length: " + std::to_string(body.size()) +
                   "\r\nConnection: close\r\n\r\n" + body;
    } else {
        body = "not found\n";
        response = "HTTP/1.0 404 Not Found\r\nContent-Type: "
                   "text/plain\r\nContent-Length: " +
                   std::to_string(body.size()) +
                   "\r\nConnection: close\r\n\r\n" + body;
    }
    writeAll(client, response.data(), response.size());
}

} // namespace pmtest::obs
