/**
 * @file
 * Minimal embedded HTTP/1.0 server for metrics scraping. Deliberately
 * tiny: binds 127.0.0.1 only, answers GET, closes after each response
 * ("Connection: close"), and routes through a single handler
 * callback. That is exactly what `curl` and a Prometheus scrape job
 * need and nothing a production ingress would want — checking tools
 * should never grow a web framework.
 *
 * The accept loop runs on its own thread and polls with a short
 * timeout so stop() cannot hang on a quiet socket. Port 0 requests an
 * ephemeral port; port() reports the bound one (the tools print it so
 * tests and scripts can scrape without racing the kernel's choice).
 */

#ifndef PMTEST_OBS_METRICS_HTTP_HH
#define PMTEST_OBS_METRICS_HTTP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace pmtest::obs
{

/**
 * Route callback: fill @p body and @p content_type for @p path and
 * return true, or return false for a 404. Called from the server
 * thread; must be safe against whatever else the process is doing.
 */
using HttpHandler = std::function<bool(const std::string &path,
                                       std::string *body,
                                       std::string *content_type)>;

/** Single-threaded scrape endpoint bound to 127.0.0.1. */
class MetricsHttpServer
{
  public:
    MetricsHttpServer() = default;
    ~MetricsHttpServer() { stop(); }

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start serving
     * @p handler on a background thread. @return false with @p error
     * set when the socket cannot be bound.
     */
    bool start(uint16_t port, HttpHandler handler,
               std::string *error = nullptr);

    /** The bound port (differs from the request when it was 0). */
    uint16_t port() const { return port_; }

    /** True between a successful start() and stop(). */
    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /** Stop accepting, close the socket, and join the thread. */
    void stop();

  private:
    void serveLoop();
    void serveOne(int client);

    HttpHandler handler_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    int listenFd_ = -1;
    uint16_t port_ = 0;
};

} // namespace pmtest::obs

#endif // PMTEST_OBS_METRICS_HTTP_HH
