/**
 * @file
 * MetricsPublisher: the background thread that turns the passive
 * telemetry registry into a live signal. Every tick (default 1 s) it
 *
 *  - snapshots the registry (counters + stage histograms),
 *  - samples **gauges** the registry cannot express — per-worker
 *    queue depth and in-flight traces, ingest progress per source,
 *    process RSS and heap bytes held — through caller-supplied
 *    sampler callbacks (the obs layer links below core, so core hands
 *    in closures over `EnginePool`/`TraceSource` instead of obs
 *    including their headers; see core/live_gauges.hh),
 *  - computes rates from the delta to the previous tick (well-defined
 *    because MetricsSnapshot carries snapshotNs),
 *  - runs the **stall watchdog**: if the progress counters stop
 *    advancing for `stallTicks` consecutive ticks while work is
 *    outstanding (traces in flight or sources undrained), it warns on
 *    stderr, bumps Counter::WatchdogStalls, and records a
 *    severity-warn event — then re-arms when progress resumes,
 *  - emits `source_eof` events as leaf sources drain,
 *  - optionally repaints a one-line TTY progress display.
 *
 * Scrapes are decoupled from sampling: renderPrometheus()/renderJson()
 * serve the latest published sample under a mutex, so an HTTP scrape
 * never touches the pool or sources directly and is safe at any
 * moment of the run. freeze() takes one final sample and drops the
 * samplers; after it the publisher keeps serving the frozen sample —
 * that is what lets a tool keep its endpoint alive (--metrics-linger)
 * after the pool and sources are destroyed.
 *
 * Under -DPMTEST_TELEMETRY=OFF the tools skip constructing a
 * publisher entirely (MetricsService gates it), so none of this code
 * runs; it still compiles, reading all-zero registry snapshots.
 */

#ifndef PMTEST_OBS_METRICS_PUBLISHER_HH
#define PMTEST_OBS_METRICS_PUBLISHER_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.hh"
#include "obs/telemetry.hh"

namespace pmtest::obs
{

/** Live progress of one leaf trace source. */
struct SourceGauge
{
    std::string label;           ///< path, or "stream"/"capture"
    uint64_t tracesTotal = 0;    ///< 0 when unknown (streams)
    bool tracesTotalKnown = false;
    uint64_t bytesTotal = 0;     ///< 0 when unknown
    uint64_t tracesConsumed = 0;
    uint64_t bytesConsumed = 0;
    bool drained = false;        ///< source fully consumed
};

/** Live dispatch-side gauges sampled from EnginePool::stats(). */
struct PoolGauges
{
    bool valid = false; ///< a pool sampler is attached and sampled
    std::vector<uint64_t> queueDepths; ///< one per worker
    uint64_t tracesSubmitted = 0;
    uint64_t tracesCompleted = 0;

    /** Traces submitted but not yet fully checked. */
    uint64_t
    inFlight() const
    {
        return tracesSubmitted > tracesCompleted
                   ? tracesSubmitted - tracesCompleted
                   : 0;
    }

    /** Sum of per-worker queue depths. */
    uint64_t queuedTraces() const;
};

/** Live ingest-side gauges sampled from the TraceSource tree. */
struct IngestGauges
{
    bool valid = false; ///< an ingest sampler is attached and sampled
    bool done = false;  ///< core::ingest() has returned
    std::vector<SourceGauge> sources; ///< one per leaf source

    uint64_t tracesTotal() const;    ///< sum over known-total leaves
    bool tracesTotalKnown() const;   ///< every leaf knows its total
    uint64_t bytesTotal() const;
    uint64_t tracesConsumed() const;
    uint64_t bytesConsumed() const;
    size_t drainedSources() const;
};

/** One published tick: registry snapshot + gauges + derived rates. */
struct GaugeSample
{
    MetricsSnapshot metrics;
    PoolGauges pool;
    IngestGauges ingest;
    uint64_t rssBytes = 0;  ///< process resident set (/proc/self/statm)
    uint64_t heapBytes = 0; ///< malloc arena bytes held (mallinfo2)

    // Rates over the window ending at this sample (0 on the first).
    double tracesCheckedPerSec = 0;
    double opsCheckedPerSec = 0;
    double tracesDecodedPerSec = 0;
    double bytesConsumedPerSec = 0;
};

/** Configuration for one publisher instance. */
struct PublisherOptions
{
    uint64_t intervalMs = 1000; ///< tick period
    /** Consecutive no-progress ticks before the watchdog fires. */
    uint32_t stallTicks = 3;
    std::string tool = "pmtest";   ///< "tool" field of exports
    bool progress = false;         ///< repaint a TTY line on stderr
    EventLog *eventLog = nullptr;  ///< optional event sink (not owned)
    std::function<PoolGauges()> poolSampler;
    std::function<IngestGauges()> ingestSampler;
};

/** Periodic sampling thread + render-side of the live service. */
class MetricsPublisher
{
  public:
    explicit MetricsPublisher(PublisherOptions options);
    ~MetricsPublisher();

    MetricsPublisher(const MetricsPublisher &) = delete;
    MetricsPublisher &operator=(const MetricsPublisher &) = delete;

    /** Start the tick thread. No-op when already running. */
    void start();

    /**
     * Take one final sample, stop the tick thread, and drop the
     * sampler callbacks. Renders keep serving the frozen sample.
     * Call before destroying the pool/sources the samplers capture.
     */
    void freeze();

    /** Stop the tick thread without a final sample. */
    void stop();

    /**
     * Run exactly one sampling tick synchronously on the calling
     * thread (no thread needed). Test hook: drives the watchdog and
     * rate computation deterministically.
     */
    void tickOnceForTest() { tick(); }

    /** Copy of the most recently published sample. */
    GaugeSample latest() const;

    /** Number of watchdog episodes fired so far. */
    uint64_t watchdogFired() const;

    /** Prometheus text exposition of the latest sample. */
    std::string renderPrometheus() const;

    /** pmtest-metrics-v1 JSON document of the latest sample. */
    std::string renderJson() const;

  private:
    void tick();
    GaugeSample takeSample();
    void runWatchdog(const GaugeSample &sample);
    void emitSourceEvents(const GaugeSample &sample);
    void paintProgress(const GaugeSample &sample) const;

    PublisherOptions options_;

    mutable std::mutex mutex_; ///< guards latest_/hasPrev_/watchdogFired_
    GaugeSample latest_;
    bool hasPrev_ = false;

    // Watchdog state (tick thread only).
    bool sigValid_ = false;
    uint64_t lastProgressSig_ = 0;
    uint32_t staleTicks_ = 0;
    bool stallActive_ = false;
    uint64_t watchdogFired_ = 0; ///< guarded by mutex_

    // source_eof edge detection (tick thread only).
    std::vector<bool> sourceDrained_;
    bool sourcesAnnounced_ = false;

    std::thread thread_;
    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    bool stopRequested_ = false; ///< guarded by wakeMutex_
    bool running_ = false;
};

} // namespace pmtest::obs

#endif // PMTEST_OBS_METRICS_PUBLISHER_HH
