/**
 * @file
 * Structured JSONL event log: the greppable audit trail of a
 * long-running check. One JSON object per line, each timestamped
 * (wall-clock milliseconds plus nanoseconds since the telemetry
 * epoch) and severity-tagged:
 *
 *   {"ts_ms":1754550000123,"mono_ns":81234567,"severity":"info",
 *    "type":"run_start","tool":"pmtest_check",...}
 *
 * Producers: the tools emit run_start/run_stop, per-source open/EOF
 * and finding records; the MetricsPublisher emits watchdog warnings.
 * emit() is mutex-serialized and flushes per record, so `tail -f`
 * and crash post-mortems see complete lines.
 *
 * "-" opens stdout; an unwritable path fails open() with a
 * path-qualified error so callers can honor the exit-2 flag-error
 * contract. Under -DPMTEST_TELEMETRY=OFF the path is still opened
 * and validated (the flag contract is configuration-independent) but
 * emit() compiles to a no-op — the log stays empty.
 */

#ifndef PMTEST_OBS_EVENT_LOG_HH
#define PMTEST_OBS_EVENT_LOG_HH

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

namespace pmtest
{
class JsonWriter;
}

namespace pmtest::obs
{

/** Severity tag on one event record. */
enum class EventSeverity : uint8_t
{
    Info,
    Warn,
    Error,
};

/** Stable record tag of @p severity ("info"/"warn"/"error"). */
const char *eventSeverityName(EventSeverity severity);

/** Thread-safe JSONL event sink. */
class EventLog
{
  public:
    EventLog() = default;
    ~EventLog() { close(); }

    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    /**
     * Open @p path for appending events ("-" = stdout). @return
     * false with @p error set to "cannot write <path>" when the file
     * cannot be created.
     */
    bool open(const std::string &path, std::string *error = nullptr);

    /** True once open() succeeded (events will be written). */
    bool active() const { return file_ != nullptr; }

    /**
     * Append one record of @p type. @p fields, when provided, adds
     * extra members to the (already open) record object via the
     * passed writer. Thread-safe; a no-op when the log is not active
     * or telemetry is compiled out.
     */
    void emit(EventSeverity severity, const char *type,
              const std::function<void(JsonWriter &)> &fields = {});

    /** Flush and close (stdout is flushed, not closed). */
    void close();

  private:
    std::mutex mutex_;
    std::FILE *file_ = nullptr;
    bool ownsFile_ = false; ///< false when writing to stdout
};

} // namespace pmtest::obs

#endif // PMTEST_OBS_EVENT_LOG_HH
