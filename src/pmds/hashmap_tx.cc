#include "pmds/hashmap_tx.hh"

namespace pmtest::pmds
{

HashmapTx::HashmapTx(txlib::ObjPool &pool, size_t nbuckets)
    : pool_(pool), root_(pool.root<Root>())
{
    if (root_->buckets == nullptr) {
        txlib::TxScope tx(pool_, PMTEST_HERE);
        pool_.txAdd(root_, sizeof(Root), PMTEST_HERE);
        const size_t bytes = nbuckets * sizeof(Node *);
        auto **buckets =
            static_cast<Node **>(pool_.txAllocRaw(bytes, PMTEST_HERE));
        std::vector<uint8_t> zeros(bytes, 0);
        pool_.txWrite(buckets, zeros.data(), bytes, PMTEST_HERE);
        pool_.txAssign(&root_->buckets, buckets, PMTEST_HERE);
        pool_.txAssign(&root_->nbuckets, uint64_t(nbuckets),
                       PMTEST_HERE);
    }
    pmtestSendTrace();
}

size_t
HashmapTx::bucketOf(uint64_t key) const
{
    return (key * 0x9e3779b97f4a7c15ULL) % root_->nbuckets;
}

void
HashmapTx::insert(uint64_t key, const void *value, size_t size)
{
    if (emitCheckers)
        PMTEST_TX_CHECKER_START();
    {
        txlib::TxScope tx(pool_, PMTEST_HERE);

        Node **slot = &root_->buckets[bucketOf(key)];
        Node *existing = *slot;
        while (existing && existing->key != key)
            existing = existing->next;

        if (existing) {
            void *buf = pool_.txAllocRaw(size, PMTEST_HERE);
            pool_.txWrite(buf, value, size, PMTEST_HERE);
            void *old = existing->value;
            pool_.txAdd(existing, sizeof(Node), PMTEST_HERE);
            pool_.txAssign(&existing->value, buf, PMTEST_HERE);
            pool_.txAssign(&existing->valueSize, uint64_t(size),
                           PMTEST_HERE);
            pool_.freeRaw(old);
        } else {
            auto *node = pool_.txAlloc<Node>(PMTEST_HERE);
            void *buf = pool_.txAllocRaw(size, PMTEST_HERE);
            pool_.txWrite(buf, value, size, PMTEST_HERE);
            Node init{key, buf, size, *slot};
            pool_.txWrite(node, &init, sizeof(init), PMTEST_HERE);

            // Snapshot the bucket head before relinking it. Skipping
            // this TX_ADD is the missing-backup bug site.
            if (!faults.skipTxAdd)
                pool_.txAdd(slot, sizeof(Node *), PMTEST_HERE);
            if (faults.extraTxAdd)
                pool_.txAddDup(slot, sizeof(Node *), PMTEST_HERE);
            pool_.txAssign(slot, node, PMTEST_HERE);

            pool_.txAdd(&root_->count, sizeof(root_->count),
                        PMTEST_HERE);
            pool_.txAssign(&root_->count, root_->count + 1,
                           PMTEST_HERE);
        }
    }
    if (emitCheckers)
        PMTEST_TX_CHECKER_END();
    pmtestSendTrace();
}

bool
HashmapTx::lookup(uint64_t key, std::vector<uint8_t> *out) const
{
    const Node *node = root_->buckets[bucketOf(key)];
    while (node && node->key != key)
        node = node->next;
    if (!node)
        return false;
    if (out) {
        out->resize(node->valueSize);
        std::memcpy(out->data(), node->value, node->valueSize);
    }
    return true;
}

bool
HashmapTx::remove(uint64_t key)
{
    Node **slot = &root_->buckets[bucketOf(key)];
    while (*slot && (*slot)->key != key)
        slot = &(*slot)->next;
    Node *node = *slot;
    if (!node)
        return false;

    if (emitCheckers)
        PMTEST_TX_CHECKER_START();
    {
        txlib::TxScope tx(pool_, PMTEST_HERE);
        pool_.txAdd(slot, sizeof(Node *), PMTEST_HERE);
        pool_.txAssign(slot, node->next, PMTEST_HERE);
        pool_.txAdd(&root_->count, sizeof(root_->count), PMTEST_HERE);
        pool_.txAssign(&root_->count, root_->count - 1, PMTEST_HERE);
        pool_.freeRaw(node->value);
        pool_.freeRaw(node);
    }
    if (emitCheckers)
        PMTEST_TX_CHECKER_END();
    pmtestSendTrace();
    return true;
}

size_t
HashmapTx::count() const
{
    return root_->count;
}

bool
HashmapTx::readImage(const pmem::PmPool &pool,
                     const std::vector<uint8_t> &image,
                     std::map<uint64_t, std::vector<uint8_t>> *out,
                     pmem::ReadSetTracker *tracker)
{
    if (image.size() != pool.size())
        return false;
    pmem::ImageView view(pool, image, tracker);

    const auto header = view.readAt<txlib::PoolHeader>(0);
    if (header.magic != txlib::PoolHeader::kMagic ||
        header.rootOffset == 0 ||
        header.rootOffset + sizeof(Root) > image.size()) {
        return false;
    }
    const auto root = view.readAt<Root>(header.rootOffset);
    if (!root.buckets || !view.contains(root.buckets) ||
        root.nbuckets == 0 || root.nbuckets > (1u << 24)) {
        return false;
    }

    size_t found = 0;
    for (uint64_t b = 0; b < root.nbuckets; b++) {
        Node *node = view.read<Node *>(root.buckets + b);
        size_t chain = 0;
        while (node) {
            if (!view.contains(node) || ++chain > image.size())
                return false; // dangling pointer or cycle
            const Node n = view.read<Node>(node);
            if (!n.value || !view.contains(n.value) ||
                n.valueSize > image.size()) {
                return false;
            }
            if (out) {
                std::vector<uint8_t> value(n.valueSize);
                view.readBytes(view.offsetOf(n.value), value.data(),
                               value.size());
                (*out)[n.key] = std::move(value);
            }
            found++;
            node = n.next;
        }
    }
    return found == root.count;
}

} // namespace pmtest::pmds
