/**
 * @file
 * Red-black tree map (PMDK's rbtree_map example): sentinel-based
 * CLRS red-black tree with parent pointers, fully transactional.
 * Hosts the Table 6 "add missing undo log entry in rb-tree example"
 * bug site: the rotation helper modifying a node without logging it.
 */

#ifndef PMTEST_PMDS_RBTREE_MAP_HH
#define PMTEST_PMDS_RBTREE_MAP_HH

#include "pmds/pm_map.hh"

namespace pmtest::pmds
{

/** Transactional red-black tree. */
class RbtreeMap : public PmMap
{
  public:
    explicit RbtreeMap(txlib::ObjPool &pool);

    const char *name() const override { return "rbtree"; }
    void insert(uint64_t key, const void *value, size_t size) override;
    bool lookup(uint64_t key,
                std::vector<uint8_t> *out = nullptr) const override;
    bool remove(uint64_t key) override;
    size_t count() const override;

    /** Wrap mutations in TX_CHECKER_START/END (Fig. 10 annotation). */
    bool emitCheckers = false;

  private:
    enum Color : uint8_t { Red, Black };

    struct Node
    {
        uint64_t key;
        void *value;
        uint64_t valueSize;
        uint8_t color;
        Node *parent;
        Node *child[2]; ///< 0 = left, 1 = right
    };

    struct Root
    {
        Node *nil;  ///< shared sentinel (black, self-referential)
        Node *root; ///< == nil when empty
        uint64_t count;
    };

    /** Snapshot a node before modification. */
    void log(Node *node);

    Node *makeNode(uint64_t key, const void *value, size_t size);
    Node *find(uint64_t key) const;
    Node *minimum(Node *node) const;

    void rotate(Node *pivot, int dir);
    void insertFixup(Node *node);
    void transplant(Node *out, Node *in);
    void deleteFixup(Node *node);

    void setParent(Node *node, Node *parent);
    void setChild(Node *node, int dir, Node *child);
    void setColor(Node *node, uint8_t color);

    txlib::ObjPool &pool_;
    Root *root_;
};

} // namespace pmtest::pmds

#endif // PMTEST_PMDS_RBTREE_MAP_HH
