#include "pmds/pm_map.hh"

#include "pmds/btree_map.hh"
#include "pmds/ctree_map.hh"
#include "pmds/hashmap_atomic.hh"
#include "pmds/hashmap_tx.hh"
#include "pmds/rbtree_map.hh"

namespace pmtest::pmds
{

const char *
mapKindName(MapKind kind)
{
    switch (kind) {
      case MapKind::Ctree: return "ctree";
      case MapKind::Btree: return "btree";
      case MapKind::Rbtree: return "rbtree";
      case MapKind::HashmapTx: return "hashmap-tx";
      case MapKind::HashmapAtomic: return "hashmap-atomic";
    }
    return "?";
}

std::unique_ptr<PmMap>
makeMap(MapKind kind, txlib::ObjPool &pool)
{
    switch (kind) {
      case MapKind::Ctree:
        return std::make_unique<CtreeMap>(pool);
      case MapKind::Btree:
        return std::make_unique<BtreeMap>(pool);
      case MapKind::Rbtree:
        return std::make_unique<RbtreeMap>(pool);
      case MapKind::HashmapTx:
        return std::make_unique<HashmapTx>(pool);
      case MapKind::HashmapAtomic:
        return std::make_unique<HashmapAtomic>(pool);
    }
    return nullptr;
}

} // namespace pmtest::pmds
