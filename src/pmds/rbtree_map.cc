#include "pmds/rbtree_map.hh"

namespace pmtest::pmds
{

RbtreeMap::RbtreeMap(txlib::ObjPool &pool)
    : pool_(pool), root_(pool.root<Root>())
{
    if (root_->nil == nullptr) {
        // One-time pool initialization: create the sentinel.
        txlib::TxScope tx(pool_, PMTEST_HERE);
        pool_.txAdd(root_, sizeof(Root), PMTEST_HERE);
        auto *nil = pool_.txAlloc<Node>(PMTEST_HERE);
        Node init{};
        init.color = Black;
        init.parent = nil;
        init.child[0] = nil;
        init.child[1] = nil;
        pool_.txWrite(nil, &init, sizeof(init), PMTEST_HERE);
        pool_.txAssign(&root_->nil, nil, PMTEST_HERE);
        pool_.txAssign(&root_->root, nil, PMTEST_HERE);
    }
    pmtestSendTrace();
}

void
RbtreeMap::log(Node *node)
{
    pool_.txAdd(node, sizeof(Node), PMTEST_HERE);
}

void
RbtreeMap::setParent(Node *node, Node *parent)
{
    log(node);
    pool_.txAssign(&node->parent, parent, PMTEST_HERE);
}

void
RbtreeMap::setChild(Node *node, int dir, Node *child)
{
    log(node);
    pool_.txAssign(&node->child[dir], child, PMTEST_HERE);
}

void
RbtreeMap::setColor(Node *node, uint8_t color)
{
    log(node);
    pool_.txAssign(&node->color, color, PMTEST_HERE);
}

RbtreeMap::Node *
RbtreeMap::makeNode(uint64_t key, const void *value, size_t size)
{
    auto *node = pool_.txAlloc<Node>(PMTEST_HERE);
    void *buf = pool_.txAllocRaw(size, PMTEST_HERE);
    pool_.txWrite(buf, value, size, PMTEST_HERE);

    Node init{};
    init.key = key;
    init.value = buf;
    init.valueSize = size;
    init.color = Red;
    init.parent = root_->nil;
    init.child[0] = root_->nil;
    init.child[1] = root_->nil;
    pool_.txWrite(node, &init, sizeof(init), PMTEST_HERE);
    return node;
}

RbtreeMap::Node *
RbtreeMap::find(uint64_t key) const
{
    Node *cur = root_->root;
    while (cur != root_->nil) {
        if (cur->key == key)
            return cur;
        cur = cur->child[key > cur->key];
    }
    return nullptr;
}

RbtreeMap::Node *
RbtreeMap::minimum(Node *node) const
{
    while (node->child[0] != root_->nil)
        node = node->child[0];
    return node;
}

void
RbtreeMap::rotate(Node *pivot, int dir)
{
    // Rotate `pivot` down in direction `dir`; its (1-dir) child takes
    // its place.
    Node *up = pivot->child[1 - dir];

    log(pivot);
    log(up);

    pool_.txAssign(&pivot->child[1 - dir], up->child[dir], PMTEST_HERE);
    if (up->child[dir] != root_->nil)
        setParent(up->child[dir], pivot);
    pool_.txAssign(&up->parent, pivot->parent, PMTEST_HERE);

    if (pivot->parent == root_->nil) {
        pool_.txAdd(root_, sizeof(Root), PMTEST_HERE);
        pool_.txAssign(&root_->root, up, PMTEST_HERE);
    } else {
        const int side = pivot == pivot->parent->child[1];
        setChild(pivot->parent, side, up);
    }
    pool_.txAssign(&up->child[dir], pivot, PMTEST_HERE);
    pool_.txAssign(&pivot->parent, up, PMTEST_HERE);
}

void
RbtreeMap::insertFixup(Node *node)
{
    while (node->parent->color == Red) {
        Node *parent = node->parent;
        Node *grand = parent->parent;
        const int side = parent == grand->child[1];
        Node *uncle = grand->child[1 - side];

        if (uncle->color == Red) {
            setColor(parent, Black);
            setColor(uncle, Black);
            setColor(grand, Red);
            node = grand;
        } else {
            if (node == parent->child[1 - side]) {
                node = parent;
                rotate(node, side);
                parent = node->parent;
                grand = parent->parent;
            }
            setColor(parent, Black);
            setColor(grand, Red);
            rotate(grand, 1 - side);
        }
    }
    if (root_->root->color != Black)
        setColor(root_->root, Black);
}

void
RbtreeMap::insert(uint64_t key, const void *value, size_t size)
{
    if (emitCheckers)
        PMTEST_TX_CHECKER_START();
    {
        txlib::TxScope tx(pool_, PMTEST_HERE);

        if (Node *existing = find(key)) {
            void *buf = pool_.txAllocRaw(size, PMTEST_HERE);
            pool_.txWrite(buf, value, size, PMTEST_HERE);
            void *old = existing->value;
            log(existing);
            pool_.txAssign(&existing->value, buf, PMTEST_HERE);
            pool_.txAssign(&existing->valueSize, uint64_t(size),
                           PMTEST_HERE);
            pool_.freeRaw(old);
        } else {
            Node *parent = root_->nil;
            Node *cur = root_->root;
            while (cur != root_->nil) {
                parent = cur;
                cur = cur->child[key > cur->key];
            }

            Node *node = makeNode(key, value, size);
            pool_.txAssign(&node->parent, parent, PMTEST_HERE);
            if (parent == root_->nil) {
                pool_.txAdd(root_, sizeof(Root), PMTEST_HERE);
                pool_.txAssign(&root_->root, node, PMTEST_HERE);
            } else {
                // Linking the new node modifies its parent. This is
                // the Table 6 rb-tree bug site (PMDK rbtree_map:
                // "add missing undo log entry"): the buggy example
                // modified the parent without snapshotting it.
                if (!faults.skipTxAdd)
                    log(parent);
                pool_.txAssign(&parent->child[key > parent->key],
                               node, PMTEST_HERE);
            }
            insertFixup(node);

            pool_.txAdd(&root_->count, sizeof(root_->count),
                        PMTEST_HERE);
            pool_.txAssign(&root_->count, root_->count + 1,
                           PMTEST_HERE);
        }
    }
    if (emitCheckers)
        PMTEST_TX_CHECKER_END();
    pmtestSendTrace();
}

bool
RbtreeMap::lookup(uint64_t key, std::vector<uint8_t> *out) const
{
    const Node *node = find(key);
    if (!node)
        return false;
    if (out) {
        out->resize(node->valueSize);
        std::memcpy(out->data(), node->value, node->valueSize);
    }
    return true;
}

void
RbtreeMap::transplant(Node *out, Node *in)
{
    if (out->parent == root_->nil) {
        pool_.txAdd(root_, sizeof(Root), PMTEST_HERE);
        pool_.txAssign(&root_->root, in, PMTEST_HERE);
    } else {
        const int side = out == out->parent->child[1];
        setChild(out->parent, side, in);
    }
    // CLRS: the sentinel's parent is set unconditionally so that
    // deleteFixup can walk up from it.
    setParent(in, out->parent);
}

void
RbtreeMap::deleteFixup(Node *node)
{
    while (node != root_->root && node->color == Black) {
        const int side = node == node->parent->child[1];
        Node *sibling = node->parent->child[1 - side];

        if (sibling->color == Red) {
            setColor(sibling, Black);
            setColor(node->parent, Red);
            rotate(node->parent, side);
            sibling = node->parent->child[1 - side];
        }
        if (sibling->child[0]->color == Black &&
            sibling->child[1]->color == Black) {
            setColor(sibling, Red);
            node = node->parent;
        } else {
            if (sibling->child[1 - side]->color == Black) {
                setColor(sibling->child[side], Black);
                setColor(sibling, Red);
                rotate(sibling, 1 - side);
                sibling = node->parent->child[1 - side];
            }
            setColor(sibling, node->parent->color);
            setColor(node->parent, Black);
            setColor(sibling->child[1 - side], Black);
            rotate(node->parent, side);
            node = root_->root;
        }
    }
    if (node->color != Black)
        setColor(node, Black);
}

bool
RbtreeMap::remove(uint64_t key)
{
    Node *node = find(key);
    if (!node)
        return false;

    if (emitCheckers)
        PMTEST_TX_CHECKER_START();
    {
        txlib::TxScope tx(pool_, PMTEST_HERE);

        Node *splice = node;
        uint8_t removed_color = splice->color;
        Node *replacement;

        if (node->child[0] == root_->nil) {
            replacement = node->child[1];
            transplant(node, node->child[1]);
        } else if (node->child[1] == root_->nil) {
            replacement = node->child[0];
            transplant(node, node->child[0]);
        } else {
            splice = minimum(node->child[1]);
            removed_color = splice->color;
            replacement = splice->child[1];
            if (splice->parent == node) {
                setParent(replacement, splice);
            } else {
                transplant(splice, splice->child[1]);
                setChild(splice, 1, node->child[1]);
                setParent(splice->child[1], splice);
            }
            transplant(node, splice);
            setChild(splice, 0, node->child[0]);
            setParent(splice->child[0], splice);
            setColor(splice, node->color);
        }

        if (removed_color == Black)
            deleteFixup(replacement);

        pool_.freeRaw(node->value);
        pool_.freeRaw(node);
        pool_.txAdd(&root_->count, sizeof(root_->count), PMTEST_HERE);
        pool_.txAssign(&root_->count, root_->count - 1, PMTEST_HERE);
    }
    if (emitCheckers)
        PMTEST_TX_CHECKER_END();
    pmtestSendTrace();
    return true;
}

size_t
RbtreeMap::count() const
{
    return root_->count;
}

} // namespace pmtest::pmds
