/**
 * @file
 * B-tree map of order 8 (PMDK's btree_map example: 7 items and 8
 * children per node, preemptive splits on the way down). Hosts the
 * two PMDK B-tree bug sites from the paper's Table 6: insertItem()
 * modifying a node without logging it, and rotateLeft() logging the
 * same node twice.
 */

#ifndef PMTEST_PMDS_BTREE_MAP_HH
#define PMTEST_PMDS_BTREE_MAP_HH

#include "pmds/pm_map.hh"

namespace pmtest::pmds
{

/** Transactional order-8 B-tree. */
class BtreeMap : public PmMap
{
  public:
    explicit BtreeMap(txlib::ObjPool &pool);

    const char *name() const override { return "btree"; }
    void insert(uint64_t key, const void *value, size_t size) override;
    bool lookup(uint64_t key,
                std::vector<uint8_t> *out = nullptr) const override;
    bool remove(uint64_t key) override;
    size_t count() const override;

    /** Wrap mutations in TX_CHECKER_START/END (Fig. 10 annotation). */
    bool emitCheckers = false;

  private:
    /** Minimum degree t: nodes hold t-1..2t-1 items. */
    static constexpr int kDegree = 4;
    static constexpr int kMaxItems = 2 * kDegree - 1; // 7
    static constexpr int kMinItems = kDegree - 1;     // 3

    struct Item
    {
        uint64_t key = 0;
        void *value = nullptr;
        uint64_t valueSize = 0;
    };

    struct Node
    {
        uint64_t n = 0; ///< number of items in use
        Item items[kMaxItems];
        Node *slots[kMaxItems + 1] = {}; ///< null in leaves
    };

    struct Root
    {
        Node *root = nullptr;
        uint64_t count = 0;
    };

    static bool isLeaf(const Node *node) { return node->slots[0] == nullptr; }

    Item makeItem(uint64_t key, const void *value, size_t size);
    void freeItemValue(const Item &item);
    void setItem(Node *node, int pos, const Item &item);

    void insertItem(Node *node, int pos, const Item &item);
    void splitChild(Node *parent, int index);
    void insertNonFull(Node *node, const Item &item);
    Item *findItem(Node *node, uint64_t key) const;

    /**
     * Remove @p key from the subtree at @p node.
     * @param free_value whether to release the value buffer — false
     *        when the item's ownership moved up during a predecessor/
     *        successor replacement.
     */
    bool removeFromNode(Node *node, uint64_t key, bool free_value);
    void removeFromLeaf(Node *node, int index);
    void fillChild(Node *node, int index);
    void rotateLeft(Node *node, int index);
    void rotateRight(Node *node, int index);
    void mergeChildren(Node *node, int index);
    Item maxItem(Node *node) const;
    Item minItem(Node *node) const;

    txlib::ObjPool &pool_;
    Root *root_;
};

} // namespace pmtest::pmds

#endif // PMTEST_PMDS_BTREE_MAP_HH
