/**
 * @file
 * Common interface of the five persistent key-value structures that
 * mirror the PMDK examples the paper evaluates (Fig. 10): C-tree,
 * B-tree, RB-tree, a transactional hashmap and a low-level (atomic)
 * hashmap. Values are variable-size byte buffers so the benchmark
 * harness can sweep the paper's "transaction size" axis (64–4096 B).
 */

#ifndef PMTEST_PMDS_PM_MAP_HH
#define PMTEST_PMDS_PM_MAP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "txlib/obj_pool.hh"

namespace pmtest::pmds
{

/**
 * Fault-injection knobs for the Table 5 bug campaign. Correct code
 * leaves all of them false; each knob plants one class of crash
 * consistency or performance bug at a realistic code site.
 */
struct MapFaults
{
    /** TX maps: skip one TX_ADD before modifying an existing node. */
    bool skipTxAdd = false;
    /** TX maps: log the same object twice (performance bug). */
    bool extraTxAdd = false;
    /** Atomic map: skip the writeback of the new node. */
    bool skipFlush = false;
    /** Atomic map: skip the fence between node persist and link. */
    bool skipFence = false;
    /** Atomic map: writeback the new node twice (performance bug). */
    bool extraFlush = false;
    /** Atomic map: fence placed after the link instead of before. */
    bool misplacedFence = false;
};

/** A persistent map from uint64 keys to byte-buffer values. */
class PmMap
{
  public:
    virtual ~PmMap() = default;

    /** Structure name ("ctree", "btree", ...). */
    virtual const char *name() const = 0;

    /** Insert or update @p key with a copy of the value bytes. */
    virtual void insert(uint64_t key, const void *value,
                        size_t size) = 0;

    /**
     * Look up @p key.
     * @param out if non-null, receives a copy of the value bytes
     * @return true when the key is present
     */
    virtual bool lookup(uint64_t key,
                        std::vector<uint8_t> *out = nullptr) const = 0;

    /** Remove @p key. @return true when it was present. */
    virtual bool remove(uint64_t key) = 0;

    /** Number of keys currently stored. */
    virtual size_t count() const = 0;

    /** Fault-injection knobs (Table 5 campaign). */
    MapFaults faults;
};

/** The five structures of the paper's microbenchmark set. */
enum class MapKind
{
    Ctree,
    Btree,
    Rbtree,
    HashmapTx,
    HashmapAtomic,
};

/** Name for a MapKind ("ctree", ...). */
const char *mapKindName(MapKind kind);

/** Instantiate a map of the given kind over @p pool. */
std::unique_ptr<PmMap> makeMap(MapKind kind, txlib::ObjPool &pool);

/** All five kinds, for sweeping benches/tests. */
inline constexpr MapKind kAllMapKinds[] = {
    MapKind::Ctree, MapKind::Btree, MapKind::Rbtree,
    MapKind::HashmapTx, MapKind::HashmapAtomic,
};

} // namespace pmtest::pmds

#endif // PMTEST_PMDS_PM_MAP_HH
