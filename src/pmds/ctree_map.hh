/**
 * @file
 * Crit-bit tree map (PMDK's ctree_map example): internal nodes hold
 * the index of the most significant bit in which their two subtrees'
 * keys differ; leaves hold key/value pairs. All structural updates
 * run inside txlib transactions.
 */

#ifndef PMTEST_PMDS_CTREE_MAP_HH
#define PMTEST_PMDS_CTREE_MAP_HH

#include <map>

#include "pmds/pm_map.hh"
#include "pmem/image_view.hh"

namespace pmtest::pmds
{

/** Transactional crit-bit tree. */
class CtreeMap : public PmMap
{
  public:
    explicit CtreeMap(txlib::ObjPool &pool);

    const char *name() const override { return "ctree"; }
    void insert(uint64_t key, const void *value, size_t size) override;
    bool lookup(uint64_t key,
                std::vector<uint8_t> *out = nullptr) const override;
    bool remove(uint64_t key) override;
    size_t count() const override;

    /** Wrap mutations in TX_CHECKER_START/END (Fig. 10 annotation). */
    bool emitCheckers = false;

    /**
     * Recovery-time consistency walk: parse the tree out of a crash
     * image (run txlib::recoverImage first).
     * @return false when structurally corrupt; otherwise fills @p out
     *         (if non-null) with the key -> value mapping.
     */
    static bool readImage(const pmem::PmPool &pool,
                          const std::vector<uint8_t> &image,
                          std::map<uint64_t, std::vector<uint8_t>>
                              *out,
                          pmem::ReadSetTracker *tracker = nullptr);

  private:
    /** Tagged child pointer: low bit set = leaf. */
    using Slot = uint64_t;

    struct Leaf
    {
        uint64_t key;
        void *value;
        uint64_t valueSize;
    };

    struct Node
    {
        uint32_t diff; ///< most significant differing bit index
        Slot child[2];
    };

    struct Root
    {
        Slot rootSlot;
        uint64_t count;
    };

    static bool isLeaf(Slot s) { return (s & 1) != 0; }
    static Leaf *leafOf(Slot s)
    {
        return reinterpret_cast<Leaf *>(s & ~uint64_t(1));
    }
    static Node *nodeOf(Slot s) { return reinterpret_cast<Node *>(s); }
    static Slot leafSlot(Leaf *l)
    {
        return reinterpret_cast<uint64_t>(l) | 1;
    }
    static Slot nodeSlot(Node *n)
    {
        return reinterpret_cast<uint64_t>(n);
    }
    static unsigned bitOf(uint64_t key, uint32_t index)
    {
        return (key >> index) & 1;
    }

    Leaf *makeLeaf(uint64_t key, const void *value, size_t size);
    Leaf *findLeaf(uint64_t key) const;

    txlib::ObjPool &pool_;
    Root *root_;
};

} // namespace pmtest::pmds

#endif // PMTEST_PMDS_CTREE_MAP_HH
