/**
 * @file
 * Low-level (non-transactional) chained hashmap, modelled on PMDK's
 * hashmap_atomic example: crash consistency comes from carefully
 * ordered 8-byte atomic link updates and explicit writeback/fence
 * sequences rather than from a transaction. This is the "CCS built
 * with low-level primitives" category of the paper's Fig. 2 and the
 * workload whose testing uses the low-level checkers directly.
 */

#ifndef PMTEST_PMDS_HASHMAP_ATOMIC_HH
#define PMTEST_PMDS_HASHMAP_ATOMIC_HH

#include "pmds/pm_map.hh"
#include "pmem/image_view.hh"

namespace pmtest::pmds
{

/** Low-level chained hashmap with atomic link updates. */
class HashmapAtomic : public PmMap
{
  public:
    /** @param nbuckets chain count (fixed; no rehashing). */
    explicit HashmapAtomic(txlib::ObjPool &pool, size_t nbuckets = 1024);

    const char *name() const override { return "hashmap-atomic"; }
    void insert(uint64_t key, const void *value, size_t size) override;
    bool lookup(uint64_t key,
                std::vector<uint8_t> *out = nullptr) const override;
    bool remove(uint64_t key) override;
    size_t count() const override;

    /**
     * Emit the low-level checkers the paper's campaign places in the
     * low-level workload: isOrderedBefore(new node, bucket head) and
     * isPersist() assertions after each durability point.
     */
    bool emitCheckers = false;

    /**
     * Recovery over a crash image: if the crash hit inside the
     * count-update protocol (countDirty set), recount the chains and
     * repair the counter — the PMDK hashmap_atomic recovery step.
     * @param recounted if non-null, receives the repaired count
     * @return false when the image is structurally corrupt
     */
    static bool recoverImage(const pmem::PmPool &pool,
                             std::vector<uint8_t> &image,
                             uint64_t *recounted = nullptr,
                             pmem::ReadSetTracker *tracker = nullptr);

  private:
    struct Node
    {
        uint64_t key;
        void *value;
        uint64_t valueSize;
        Node *next;
    };

    struct Root
    {
        Node **buckets;
        uint64_t nbuckets;
        uint64_t count;
        uint64_t countDirty; ///< PMDK-style recoverable counter flag
    };

    size_t bucketOf(uint64_t key) const;

    /** The count-update protocol: dirty, bump, clean (each durable). */
    void updateCount(int64_t delta);

    txlib::ObjPool &pool_;
    Root *root_;
};

} // namespace pmtest::pmds

#endif // PMTEST_PMDS_HASHMAP_ATOMIC_HH
