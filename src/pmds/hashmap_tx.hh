/**
 * @file
 * Transactional chained hashmap (PMDK's hashmap_tx example): a fixed
 * bucket array of singly linked chains; every mutation runs in one
 * txlib transaction.
 */

#ifndef PMTEST_PMDS_HASHMAP_TX_HH
#define PMTEST_PMDS_HASHMAP_TX_HH

#include <map>

#include "pmds/pm_map.hh"
#include "pmem/image_view.hh"

namespace pmtest::pmds
{

/** Transactional chained hashmap. */
class HashmapTx : public PmMap
{
  public:
    /** @param nbuckets chain count (kept fixed; no rehashing). */
    explicit HashmapTx(txlib::ObjPool &pool, size_t nbuckets = 1024);

    const char *name() const override { return "hashmap-tx"; }
    void insert(uint64_t key, const void *value, size_t size) override;
    bool lookup(uint64_t key,
                std::vector<uint8_t> *out = nullptr) const override;
    bool remove(uint64_t key) override;
    size_t count() const override;

    /** Wrap mutations in TX_CHECKER_START/END (Fig. 10 annotation). */
    bool emitCheckers = false;

    /**
     * Recovery-time consistency walk: parse the map out of a crash
     * image (run txlib::recoverImage first). Used by crash-validation
     * tests and as a post-recovery fsck.
     *
     * @param pool the live pool the image was captured from
     * @param image the (recovered) crash image
     * @param out if non-null, receives the key -> value mapping
     * @return false when the image is structurally corrupt (dangling
     *         pointers, cycles, count mismatch)
     */
    static bool readImage(const pmem::PmPool &pool,
                          const std::vector<uint8_t> &image,
                          std::map<uint64_t, std::vector<uint8_t>>
                              *out,
                          pmem::ReadSetTracker *tracker = nullptr);

  private:
    struct Node
    {
        uint64_t key;
        void *value;
        uint64_t valueSize;
        Node *next;
    };

    struct Root
    {
        Node **buckets;
        uint64_t nbuckets;
        uint64_t count;
    };

    /** Fibonacci hashing of the key into a bucket index. */
    size_t bucketOf(uint64_t key) const;

    txlib::ObjPool &pool_;
    Root *root_;
};

} // namespace pmtest::pmds

#endif // PMTEST_PMDS_HASHMAP_TX_HH
