#include "pmds/ctree_map.hh"

#include <bit>

namespace pmtest::pmds
{

CtreeMap::CtreeMap(txlib::ObjPool &pool)
    : pool_(pool), root_(pool.root<Root>())
{
}

CtreeMap::Leaf *
CtreeMap::makeLeaf(uint64_t key, const void *value, size_t size)
{
    auto *leaf = pool_.txAlloc<Leaf>(PMTEST_HERE);
    void *buf = pool_.txAllocRaw(size, PMTEST_HERE);
    pool_.txWrite(buf, value, size, PMTEST_HERE);

    Leaf init{key, buf, size};
    pool_.txWrite(leaf, &init, sizeof(init), PMTEST_HERE);
    return leaf;
}

CtreeMap::Leaf *
CtreeMap::findLeaf(uint64_t key) const
{
    Slot cur = root_->rootSlot;
    if (cur == 0)
        return nullptr;
    while (!isLeaf(cur))
        cur = nodeOf(cur)->child[bitOf(key, nodeOf(cur)->diff)];
    return leafOf(cur);
}

void
CtreeMap::insert(uint64_t key, const void *value, size_t size)
{
    if (emitCheckers)
        PMTEST_TX_CHECKER_START();
    {
        txlib::TxScope tx(pool_, PMTEST_HERE);

        if (root_->rootSlot == 0) {
            // First insertion: the root slot becomes a leaf.
            pool_.txAdd(root_, sizeof(Root), PMTEST_HERE);
            Leaf *leaf = makeLeaf(key, value, size);
            pool_.txAssign(&root_->rootSlot, leafSlot(leaf),
                           PMTEST_HERE);
            pool_.txAssign(&root_->count, root_->count + 1,
                           PMTEST_HERE);
        } else {
            Leaf *nearest = findLeaf(key);
            if (nearest->key == key) {
                // Update in place: swap the value buffer.
                void *buf = pool_.txAllocRaw(size, PMTEST_HERE);
                pool_.txWrite(buf, value, size, PMTEST_HERE);
                void *old = nearest->value;
                pool_.txAdd(nearest, sizeof(Leaf), PMTEST_HERE);
                pool_.txAssign(&nearest->value, buf, PMTEST_HERE);
                pool_.txAssign(&nearest->valueSize, uint64_t(size),
                               PMTEST_HERE);
                pool_.freeRaw(old);
            } else {
                // The crit bit between the new key and its nearest
                // neighbour decides where the new internal node goes.
                const uint32_t d =
                    63 - std::countl_zero(key ^ nearest->key);

                Slot *slot = &root_->rootSlot;
                while (!isLeaf(*slot) && nodeOf(*slot)->diff > d)
                    slot = &nodeOf(*slot)->child[bitOf(
                        key, nodeOf(*slot)->diff)];

                // Snapshot the slot we are about to relink. Skipping
                // this TX_ADD is the "missing backup" bug site.
                if (!faults.skipTxAdd)
                    pool_.txAdd(slot, sizeof(Slot), PMTEST_HERE);
                if (faults.extraTxAdd)
                    pool_.txAddDup(slot, sizeof(Slot), PMTEST_HERE);

                Leaf *leaf = makeLeaf(key, value, size);
                auto *node = pool_.txAlloc<Node>(PMTEST_HERE);
                Node init;
                init.diff = d;
                init.child[bitOf(key, d)] = leafSlot(leaf);
                init.child[1 - bitOf(key, d)] = *slot;
                pool_.txWrite(node, &init, sizeof(init), PMTEST_HERE);
                pool_.txAssign(slot, nodeSlot(node), PMTEST_HERE);

                pool_.txAdd(&root_->count, sizeof(root_->count),
                            PMTEST_HERE);
                pool_.txAssign(&root_->count, root_->count + 1,
                               PMTEST_HERE);
            }
        }
    }
    if (emitCheckers)
        PMTEST_TX_CHECKER_END();
    pmtestSendTrace();
}

bool
CtreeMap::lookup(uint64_t key, std::vector<uint8_t> *out) const
{
    const Leaf *leaf = findLeaf(key);
    if (!leaf || leaf->key != key)
        return false;
    if (out) {
        out->resize(leaf->valueSize);
        std::memcpy(out->data(), leaf->value, leaf->valueSize);
    }
    return true;
}

bool
CtreeMap::remove(uint64_t key)
{
    if (root_->rootSlot == 0)
        return false;

    // Walk down remembering the slot that points at the parent node,
    // so the sibling can be spliced into the grandparent.
    Slot *parent_slot = nullptr;
    Slot *slot = &root_->rootSlot;
    while (!isLeaf(*slot)) {
        parent_slot = slot;
        slot = &nodeOf(*slot)->child[bitOf(key, nodeOf(*slot)->diff)];
    }
    Leaf *leaf = leafOf(*slot);
    if (leaf->key != key)
        return false;

    if (emitCheckers)
        PMTEST_TX_CHECKER_START();
    {
        txlib::TxScope tx(pool_, PMTEST_HERE);
        if (parent_slot == nullptr) {
            // Removing the only element; the Root snapshot covers
            // both the slot and the count.
            pool_.txAdd(root_, sizeof(Root), PMTEST_HERE);
            pool_.txAssign<Slot>(&root_->rootSlot, 0, PMTEST_HERE);
        } else {
            Node *parent = nodeOf(*parent_slot);
            const unsigned b = bitOf(key, parent->diff);
            const Slot sibling = parent->child[1 - b];
            pool_.txAdd(parent_slot, sizeof(Slot), PMTEST_HERE);
            pool_.txAssign(parent_slot, sibling, PMTEST_HERE);
            pool_.freeRaw(parent);
            pool_.txAdd(&root_->count, sizeof(root_->count),
                        PMTEST_HERE);
        }
        pool_.txAssign(&root_->count, root_->count - 1, PMTEST_HERE);
        pool_.freeRaw(leaf->value);
        pool_.freeRaw(leaf);
    }
    if (emitCheckers)
        PMTEST_TX_CHECKER_END();
    pmtestSendTrace();
    return true;
}

size_t
CtreeMap::count() const
{
    return root_->count;
}

namespace
{

/** Recursive image walk; returns false on corruption. */
bool
walkSlot(const pmem::ImageView &view, uint64_t slot, size_t depth,
         std::map<uint64_t, std::vector<uint8_t>> *out,
         size_t *leaves)
{
    if (depth > 70)
        return false; // deeper than 64-bit crit-bit trees can be
    if (slot & 1) {
        const auto *leaf_ptr =
            reinterpret_cast<const void *>(slot & ~uint64_t(1));
        if (!view.contains(leaf_ptr))
            return false;
        struct LeafRaw
        {
            uint64_t key;
            void *value;
            uint64_t valueSize;
        };
        const auto leaf = view.read<LeafRaw>(leaf_ptr);
        if (!leaf.value || !view.contains(leaf.value) ||
            leaf.valueSize > view.image().size()) {
            return false;
        }
        if (out) {
            std::vector<uint8_t> value(leaf.valueSize);
            view.readBytes(view.offsetOf(leaf.value), value.data(),
                           value.size());
            (*out)[leaf.key] = std::move(value);
        }
        (*leaves)++;
        return true;
    }

    const auto *node_ptr = reinterpret_cast<const void *>(slot);
    if (!view.contains(node_ptr))
        return false;
    struct NodeRaw
    {
        uint32_t diff;
        uint64_t child[2];
    };
    const auto node = view.read<NodeRaw>(node_ptr);
    if (node.diff > 63 || node.child[0] == 0 || node.child[1] == 0)
        return false;
    return walkSlot(view, node.child[0], depth + 1, out, leaves) &&
           walkSlot(view, node.child[1], depth + 1, out, leaves);
}

} // namespace

bool
CtreeMap::readImage(const pmem::PmPool &pool,
                    const std::vector<uint8_t> &image,
                    std::map<uint64_t, std::vector<uint8_t>> *out,
                    pmem::ReadSetTracker *tracker)
{
    if (image.size() != pool.size())
        return false;
    pmem::ImageView view(pool, image, tracker);

    const auto header = view.readAt<txlib::PoolHeader>(0);
    if (header.magic != txlib::PoolHeader::kMagic ||
        header.rootOffset == 0 ||
        header.rootOffset + sizeof(Root) > image.size()) {
        return false;
    }
    const auto root = view.readAt<Root>(header.rootOffset);
    if (root.rootSlot == 0)
        return root.count == 0;

    size_t leaves = 0;
    if (!walkSlot(view, root.rootSlot, 0, out, &leaves))
        return false;
    return leaves == root.count;
}

} // namespace pmtest::pmds
