/**
 * @file
 * A persistent FIFO ring queue built on low-level primitives — the
 * "custom crash-consistent application" CCS class the paper's
 * introduction cites (persistent lock-free queues, NV-Tree-style
 * custom structures). Crash consistency comes from ordering: a slot's
 * payload must be durable before the tail index publishes it, and the
 * head index persists before a dequeued slot may be reused.
 *
 * Recovery: head and tail are the only mutable metadata; any crash
 * leaves a consistent prefix of published entries.
 */

#ifndef PMTEST_PMDS_PM_QUEUE_HH
#define PMTEST_PMDS_PM_QUEUE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "pmem/image_view.hh"
#include "txlib/obj_pool.hh"

namespace pmtest::pmds
{

/** Fault-injection knobs for the queue (low-level bug classes). */
struct QueueFaults
{
    /** Skip the payload writeback before publishing (durability). */
    bool skipSlotFlush = false;
    /** Skip the fence between payload persist and tail publish. */
    bool skipSlotFence = false;
    /** Write the payload back twice (performance). */
    bool extraSlotFlush = false;
};

/** A bounded persistent FIFO of fixed-size payloads. */
class PmQueue
{
  public:
    /** Payload bytes per slot. */
    static constexpr size_t kSlotPayload = 240;

    /**
     * @param pool backing pool (root object holds the queue)
     * @param capacity number of slots
     */
    PmQueue(txlib::ObjPool &pool, uint64_t capacity);

    /**
     * Append a payload (truncated/zero-padded to kSlotPayload).
     * @return false when the queue is full.
     */
    bool enqueue(const void *data, size_t size);

    /**
     * Pop the oldest payload.
     * @param out if non-null, receives the payload bytes
     * @return false when the queue is empty.
     */
    bool dequeue(std::vector<uint8_t> *out = nullptr);

    /** Entries currently queued. */
    uint64_t size() const;

    /** True when no entries are queued. */
    bool empty() const { return size() == 0; }

    /** True when enqueue would fail. */
    bool full() const;

    /** Emit the low-level checkers at the publish points. */
    bool emitCheckers = false;

    /** Fault-injection knobs. */
    QueueFaults faults;

    /**
     * Recovery-time walk of a crash image: validates the metadata and
     * extracts the published entries, oldest first.
     * @return false when the image is structurally corrupt.
     */
    static bool readImage(const pmem::PmPool &pool,
                          const std::vector<uint8_t> &image,
                          std::vector<std::vector<uint8_t>> *out,
                          pmem::ReadSetTracker *tracker = nullptr);

  private:
    struct Slot
    {
        uint64_t size;
        uint8_t data[kSlotPayload];
    };

    struct Root
    {
        uint64_t head;     ///< next slot to dequeue
        uint64_t tail;     ///< next slot to fill
        uint64_t capacity; ///< ring size in slots
        Slot *slots;       ///< the ring
    };

    Slot *slotAt(uint64_t index);

    txlib::ObjPool &pool_;
    Root *root_;
};

} // namespace pmtest::pmds

#endif // PMTEST_PMDS_PM_QUEUE_HH
