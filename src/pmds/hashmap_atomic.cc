#include "pmds/hashmap_atomic.hh"

namespace pmtest::pmds
{

HashmapAtomic::HashmapAtomic(txlib::ObjPool &pool, size_t nbuckets)
    : pool_(pool), root_(pool.root<Root>())
{
    if (root_->buckets == nullptr) {
        const size_t bytes = nbuckets * sizeof(Node *);
        auto **buckets =
            static_cast<Node **>(pool_.allocRaw(bytes));
        std::vector<uint8_t> zeros(bytes, 0);
        pmStore(buckets, zeros.data(), bytes, PMTEST_HERE);
        pmClwb(buckets, bytes, PMTEST_HERE);
        pmSfence(PMTEST_HERE);

        Root init{buckets, nbuckets, 0, 0};
        pool_.persist(root_, &init, sizeof(init), PMTEST_HERE);
    }
    pmtestSendTrace();
}

size_t
HashmapAtomic::bucketOf(uint64_t key) const
{
    return (key * 0x9e3779b97f4a7c15ULL) % root_->nbuckets;
}

void
HashmapAtomic::updateCount(int64_t delta)
{
    // PMDK hashmap_atomic protocol: the count is not linked into the
    // structure atomically, so a dirty flag brackets the update and
    // recovery recomputes the count when the flag is set.
    pmAssign(&root_->countDirty, uint64_t(1), PMTEST_HERE);
    pmClwb(&root_->countDirty, sizeof(uint64_t), PMTEST_HERE);
    pmSfence(PMTEST_HERE);

    pmAssign(&root_->count, uint64_t(root_->count + delta),
             PMTEST_HERE);
    pmClwb(&root_->count, sizeof(uint64_t), PMTEST_HERE);
    pmSfence(PMTEST_HERE);

    pmAssign(&root_->countDirty, uint64_t(0), PMTEST_HERE);
    pmClwb(&root_->countDirty, sizeof(uint64_t), PMTEST_HERE);
    pmSfence(PMTEST_HERE);
}

void
HashmapAtomic::insert(uint64_t key, const void *value, size_t size)
{
    Node **slot = &root_->buckets[bucketOf(key)];

    {
        // Update in place if the key exists: swap the value buffer
        // with an atomic 8-byte pointer store.
        Node *existing = *slot;
        while (existing && existing->key != key)
            existing = existing->next;
        if (existing) {
            void *buf = pool_.allocRaw(size);
            pmStore(buf, value, size, PMTEST_HERE);
            pmClwb(buf, size, PMTEST_HERE);
            pmSfence(PMTEST_HERE);

            void *old = existing->value;
            pmAssign(&existing->value, buf, PMTEST_HERE);
            pmAssign(&existing->valueSize, uint64_t(size), PMTEST_HERE);
            pmClwb(&existing->value, 2 * sizeof(uint64_t), PMTEST_HERE);
            pmSfence(PMTEST_HERE);
            pool_.freeRaw(old);
            pmtestSendTrace();
            return;
        }
    }

    // 1. Build the new node off to the side and persist it.
    auto *node = static_cast<Node *>(pool_.allocRaw(sizeof(Node)));
    void *buf = pool_.allocRaw(size);
    pmStore(buf, value, size, PMTEST_HERE);
    pmClwb(buf, size, PMTEST_HERE);

    Node init{key, buf, size, *slot};
    pmStore(node, &init, sizeof(init), PMTEST_HERE);
    if (!faults.skipFlush)
        pmClwb(node, sizeof(Node), PMTEST_HERE);
    if (faults.extraFlush)
        pmClwb(node, sizeof(Node), PMTEST_HERE);

    // 2. Fence: the node and its value must be durable before the
    //    link makes them reachable. Omitting or misplacing this fence
    //    is the classic low-level ordering bug.
    if (!faults.skipFence && !faults.misplacedFence)
        pmSfence(PMTEST_HERE);

    if (emitCheckers)
        PMTEST_IS_PERSIST(node, sizeof(Node));

    // 3. Atomic 8-byte link, then persist the bucket slot.
    pmAssign(slot, node, PMTEST_HERE);
    pmClwb(slot, sizeof(Node *), PMTEST_HERE);
    pmSfence(PMTEST_HERE);
    if (faults.misplacedFence) {
        // The fence that should have preceded the link shows up here
        // instead — too late to order node vs. link.
        pmSfence(PMTEST_HERE);
    }

    if (emitCheckers) {
        // The node must have been durable no later than the moment
        // the link could persist.
        PMTEST_IS_ORDERED_BEFORE(node, sizeof(Node), slot,
                                 sizeof(Node *));
        PMTEST_IS_PERSIST(slot, sizeof(Node *));
    }

    // 4. Recoverable count update.
    updateCount(1);
    if (emitCheckers)
        PMTEST_IS_PERSIST(&root_->count, sizeof(uint64_t));

    pmtestSendTrace();
}

bool
HashmapAtomic::lookup(uint64_t key, std::vector<uint8_t> *out) const
{
    const Node *node = root_->buckets[bucketOf(key)];
    while (node && node->key != key)
        node = node->next;
    if (!node)
        return false;
    if (out) {
        out->resize(node->valueSize);
        std::memcpy(out->data(), node->value, node->valueSize);
    }
    return true;
}

bool
HashmapAtomic::remove(uint64_t key)
{
    Node **slot = &root_->buckets[bucketOf(key)];
    while (*slot && (*slot)->key != key)
        slot = &(*slot)->next;
    Node *node = *slot;
    if (!node)
        return false;

    // Atomic unlink, persist the slot, then retire the node.
    pmAssign(slot, node->next, PMTEST_HERE);
    pmClwb(slot, sizeof(Node *), PMTEST_HERE);
    pmSfence(PMTEST_HERE);
    if (emitCheckers)
        PMTEST_IS_PERSIST(slot, sizeof(Node *));

    updateCount(-1);

    pool_.freeRaw(node->value);
    pool_.freeRaw(node);
    pmtestSendTrace();
    return true;
}

size_t
HashmapAtomic::count() const
{
    return root_->count;
}

bool
HashmapAtomic::recoverImage(const pmem::PmPool &pool,
                            std::vector<uint8_t> &image,
                            uint64_t *recounted,
                            pmem::ReadSetTracker *tracker)
{
    if (image.size() != pool.size())
        return false;
    pmem::ImageView view(pool, image, tracker);

    const auto header = view.readAt<txlib::PoolHeader>(0);
    if (header.magic != txlib::PoolHeader::kMagic ||
        header.rootOffset == 0 ||
        header.rootOffset + sizeof(Root) > image.size()) {
        return false;
    }
    const uint64_t root_off = header.rootOffset;
    auto root = view.readAt<Root>(root_off);
    if (!root.buckets || !view.contains(root.buckets) ||
        root.nbuckets == 0 || root.nbuckets > (1u << 24)) {
        return false;
    }

    // Count the reachable nodes; the links are the source of truth.
    uint64_t counted = 0;
    for (uint64_t b = 0; b < root.nbuckets; b++) {
        Node *node = view.read<Node *>(root.buckets + b);
        size_t chain = 0;
        while (node) {
            if (!view.contains(node) || ++chain > image.size())
                return false;
            counted += 1;
            node = view.read<Node>(node).next;
        }
    }
    if (recounted)
        *recounted = counted;

    if (root.countDirty != 0 || root.count != counted) {
        // Repair: the dirty flag marks an interrupted update, and a
        // mismatched counter without the flag means the crash hit
        // between the link persist and the counter protocol. The
        // write goes through the tracker so the oracle can roll the
        // repair back between crash states.
        root.count = counted;
        root.countDirty = 0;
        pmem::TrackedImage repair(image, tracker);
        repair.writeAt(root_off, root);
    }
    return true;
}

} // namespace pmtest::pmds
