#include "pmds/pm_queue.hh"

#include <cstring>

#include "util/logging.hh"

namespace pmtest::pmds
{

PmQueue::PmQueue(txlib::ObjPool &pool, uint64_t capacity)
    : pool_(pool), root_(pool.root<Root>())
{
    if (capacity == 0)
        fatal("PmQueue: capacity must be positive");
    if (root_->slots == nullptr) {
        // One-time setup: allocate the ring and publish the metadata
        // durably before first use.
        auto *slots = static_cast<Slot *>(
            pool_.allocRaw(capacity * sizeof(Slot)));
        std::memset(slots, 0, capacity * sizeof(Slot));

        Root init{0, 0, capacity, slots};
        pool_.persist(root_, &init, sizeof(init), PMTEST_HERE);
    }
    pmtestSendTrace();
}

PmQueue::Slot *
PmQueue::slotAt(uint64_t index)
{
    return &root_->slots[index % root_->capacity];
}

uint64_t
PmQueue::size() const
{
    return root_->tail - root_->head;
}

bool
PmQueue::full() const
{
    return size() == root_->capacity;
}

bool
PmQueue::enqueue(const void *data, size_t size)
{
    if (full())
        return false;

    // 1. Fill the slot off to the side (it is not published yet).
    Slot *slot = slotAt(root_->tail);
    Slot staged{};
    staged.size = std::min<uint64_t>(size, kSlotPayload);
    std::memcpy(staged.data, data, staged.size);
    pmStore(slot, &staged, sizeof(staged), PMTEST_HERE);
    if (!faults.skipSlotFlush)
        pmClwb(slot, sizeof(Slot), PMTEST_HERE);
    if (faults.extraSlotFlush)
        pmClwb(slot, sizeof(Slot), PMTEST_HERE);

    // 2. The payload must be durable before the tail publishes it.
    if (!faults.skipSlotFence)
        pmSfence(PMTEST_HERE);
    if (emitCheckers) {
        PMTEST_IS_PERSIST(slot, sizeof(Slot));
    }

    // 3. Publish: bump the tail and persist it.
    pmAssign<uint64_t>(&root_->tail, root_->tail + 1, PMTEST_HERE);
    pmClwb(&root_->tail, sizeof(uint64_t), PMTEST_HERE);
    pmSfence(PMTEST_HERE);
    if (emitCheckers) {
        PMTEST_IS_ORDERED_BEFORE(slot, sizeof(Slot), &root_->tail,
                                 sizeof(uint64_t));
        PMTEST_IS_PERSIST(&root_->tail, sizeof(uint64_t));
    }

    pmtestSendTrace();
    return true;
}

bool
PmQueue::dequeue(std::vector<uint8_t> *out)
{
    if (empty())
        return false;

    const Slot *slot = slotAt(root_->head);
    if (out)
        out->assign(slot->data, slot->data + slot->size);

    // Retire: bump the head and persist it before the slot can be
    // reused by a future enqueue.
    pmAssign<uint64_t>(&root_->head, root_->head + 1, PMTEST_HERE);
    pmClwb(&root_->head, sizeof(uint64_t), PMTEST_HERE);
    pmSfence(PMTEST_HERE);
    if (emitCheckers)
        PMTEST_IS_PERSIST(&root_->head, sizeof(uint64_t));

    pmtestSendTrace();
    return true;
}

bool
PmQueue::readImage(const pmem::PmPool &pool,
                   const std::vector<uint8_t> &image,
                   std::vector<std::vector<uint8_t>> *out,
                   pmem::ReadSetTracker *tracker)
{
    if (image.size() != pool.size())
        return false;
    pmem::ImageView view(pool, image, tracker);

    const auto header = view.readAt<txlib::PoolHeader>(0);
    if (header.magic != txlib::PoolHeader::kMagic ||
        header.rootOffset == 0 ||
        header.rootOffset + sizeof(Root) > image.size()) {
        return false;
    }
    const auto root = view.readAt<Root>(header.rootOffset);
    if (!root.slots || !view.contains(root.slots) ||
        root.capacity == 0 || root.capacity > (1u << 24)) {
        return false;
    }
    if (root.tail < root.head ||
        root.tail - root.head > root.capacity) {
        return false; // torn metadata
    }

    for (uint64_t i = root.head; i < root.tail; i++) {
        const Slot slot =
            view.read<Slot>(root.slots + i % root.capacity);
        if (slot.size > kSlotPayload)
            return false;
        if (out)
            out->emplace_back(slot.data, slot.data + slot.size);
    }
    return true;
}

} // namespace pmtest::pmds
