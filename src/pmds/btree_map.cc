#include "pmds/btree_map.hh"

#include "util/logging.hh"

namespace pmtest::pmds
{

BtreeMap::BtreeMap(txlib::ObjPool &pool)
    : pool_(pool), root_(pool.root<Root>())
{
}

BtreeMap::Item
BtreeMap::makeItem(uint64_t key, const void *value, size_t size)
{
    Item item;
    item.key = key;
    item.value = pool_.txAllocRaw(size, PMTEST_HERE);
    item.valueSize = size;
    pool_.txWrite(item.value, value, size, PMTEST_HERE);
    return item;
}

void
BtreeMap::freeItemValue(const Item &item)
{
    if (item.value)
        pool_.freeRaw(item.value);
}

void
BtreeMap::setItem(Node *node, int pos, const Item &item)
{
    pool_.txAdd(node, sizeof(Node), PMTEST_HERE);
    pool_.txWrite(&node->items[pos], &item, sizeof(Item), PMTEST_HERE);
}

void
BtreeMap::insertItem(Node *node, int pos, const Item &item)
{
    // This is the paper's Table 6 "modify a tree node without logging
    // it" site (PMDK btree_map.c:201): the snapshot below is exactly
    // the TX_ADD Intel added in the fix.
    if (!faults.skipTxAdd)
        pool_.txAdd(node, sizeof(Node), PMTEST_HERE);

    Node copy = *node;
    for (int i = static_cast<int>(copy.n); i > pos; i--)
        copy.items[i] = copy.items[i - 1];
    copy.items[pos] = item;
    copy.n++;
    pool_.txWrite(node, &copy, sizeof(copy), PMTEST_HERE);
}

void
BtreeMap::splitChild(Node *parent, int index)
{
    Node *child = parent->slots[index];
    pool_.txAdd(parent, sizeof(Node), PMTEST_HERE);
    pool_.txAdd(child, sizeof(Node), PMTEST_HERE);

    auto *right = pool_.txAlloc<Node>(PMTEST_HERE);
    Node right_init{};
    for (int i = 0; i < kMinItems; i++)
        right_init.items[i] = child->items[kDegree + i];
    if (!isLeaf(child)) {
        for (int i = 0; i < kDegree; i++)
            right_init.slots[i] = child->slots[kDegree + i];
    }
    right_init.n = kMinItems;
    pool_.txWrite(right, &right_init, sizeof(right_init), PMTEST_HERE);

    const Item median = child->items[kDegree - 1];

    Node child_copy = *child;
    for (int i = kDegree - 1; i < kMaxItems; i++)
        child_copy.items[i] = Item{};
    if (!isLeaf(child)) {
        for (int i = kDegree; i <= kMaxItems; i++)
            child_copy.slots[i] = nullptr;
    }
    child_copy.n = kDegree - 1;
    pool_.txWrite(child, &child_copy, sizeof(child_copy), PMTEST_HERE);

    Node parent_copy = *parent;
    for (int i = static_cast<int>(parent_copy.n); i > index; i--) {
        parent_copy.items[i] = parent_copy.items[i - 1];
        parent_copy.slots[i + 1] = parent_copy.slots[i];
    }
    parent_copy.items[index] = median;
    parent_copy.slots[index + 1] = right;
    parent_copy.n++;
    pool_.txWrite(parent, &parent_copy, sizeof(parent_copy),
                  PMTEST_HERE);
}

void
BtreeMap::insertNonFull(Node *node, const Item &item)
{
    if (isLeaf(node)) {
        int pos = static_cast<int>(node->n);
        while (pos > 0 && node->items[pos - 1].key > item.key)
            pos--;
        insertItem(node, pos, item);
        return;
    }

    int i = static_cast<int>(node->n);
    while (i > 0 && node->items[i - 1].key > item.key)
        i--;
    if (node->slots[i]->n == kMaxItems) {
        splitChild(node, i);
        if (item.key > node->items[i].key)
            i++;
    }
    insertNonFull(node->slots[i], item);
}

BtreeMap::Item *
BtreeMap::findItem(Node *node, uint64_t key) const
{
    while (node) {
        int i = 0;
        while (i < static_cast<int>(node->n) &&
               node->items[i].key < key)
            i++;
        if (i < static_cast<int>(node->n) && node->items[i].key == key)
            return &node->items[i];
        if (isLeaf(node))
            return nullptr;
        node = node->slots[i];
    }
    return nullptr;
}

void
BtreeMap::insert(uint64_t key, const void *value, size_t size)
{
    if (emitCheckers)
        PMTEST_TX_CHECKER_START();
    {
        txlib::TxScope tx(pool_, PMTEST_HERE);

        if (Item *existing = root_->root
                                 ? findItem(root_->root, key)
                                 : nullptr) {
            // Update: swap the value buffer in place.
            void *old = existing->value;
            Item updated = makeItem(key, value, size);
            // The item lives inside a node; snapshot just the item.
            pool_.txAdd(existing, sizeof(Item), PMTEST_HERE);
            pool_.txWrite(existing, &updated, sizeof(Item),
                          PMTEST_HERE);
            pool_.freeRaw(old);
        } else {
            if (!root_->root) {
                pool_.txAdd(root_, sizeof(Root), PMTEST_HERE);
                auto *node = pool_.txAlloc<Node>(PMTEST_HERE);
                Node init{};
                pool_.txWrite(node, &init, sizeof(init), PMTEST_HERE);
                pool_.txAssign(&root_->root, node, PMTEST_HERE);
            } else if (root_->root->n == kMaxItems) {
                pool_.txAdd(root_, sizeof(Root), PMTEST_HERE);
                auto *top = pool_.txAlloc<Node>(PMTEST_HERE);
                Node init{};
                init.slots[0] = root_->root;
                pool_.txWrite(top, &init, sizeof(init), PMTEST_HERE);
                pool_.txAssign(&root_->root, top, PMTEST_HERE);
                splitChild(top, 0);
            }
            insertNonFull(root_->root, makeItem(key, value, size));
            pool_.txAdd(&root_->count, sizeof(root_->count),
                        PMTEST_HERE);
            pool_.txAssign(&root_->count, root_->count + 1,
                           PMTEST_HERE);
        }
    }
    if (emitCheckers)
        PMTEST_TX_CHECKER_END();
    pmtestSendTrace();
}

bool
BtreeMap::lookup(uint64_t key, std::vector<uint8_t> *out) const
{
    if (!root_->root)
        return false;
    const Item *item =
        const_cast<BtreeMap *>(this)->findItem(root_->root, key);
    if (!item)
        return false;
    if (out) {
        out->resize(item->valueSize);
        std::memcpy(out->data(), item->value, item->valueSize);
    }
    return true;
}

BtreeMap::Item
BtreeMap::maxItem(Node *node) const
{
    while (!isLeaf(node))
        node = node->slots[node->n];
    return node->items[node->n - 1];
}

BtreeMap::Item
BtreeMap::minItem(Node *node) const
{
    while (!isLeaf(node))
        node = node->slots[0];
    return node->items[0];
}

void
BtreeMap::removeFromLeaf(Node *node, int index)
{
    pool_.txAdd(node, sizeof(Node), PMTEST_HERE);
    Node copy = *node;
    for (int i = index; i + 1 < static_cast<int>(copy.n); i++)
        copy.items[i] = copy.items[i + 1];
    copy.items[copy.n - 1] = Item{};
    copy.n--;
    pool_.txWrite(node, &copy, sizeof(copy), PMTEST_HERE);
}

void
BtreeMap::rotateLeft(Node *node, int index)
{
    // Move the separator down into the left child and the right
    // child's first item up into the parent. This is the paper's
    // Table 6 duplicate-log site (PMDK btree_map.c:367): the fixed
    // code relies on the snapshot made by its caller/insert path;
    // the buggy code logged the node a second time.
    Node *left = node->slots[index];
    Node *right = node->slots[index + 1];

    pool_.txAdd(node, sizeof(Node), PMTEST_HERE);
    if (faults.extraTxAdd)
        pool_.txAddDup(node, sizeof(Node), PMTEST_HERE);
    pool_.txAdd(left, sizeof(Node), PMTEST_HERE);
    pool_.txAdd(right, sizeof(Node), PMTEST_HERE);

    Node left_copy = *left;
    left_copy.items[left_copy.n] = node->items[index];
    if (!isLeaf(right))
        left_copy.slots[left_copy.n + 1] = right->slots[0];
    left_copy.n++;
    pool_.txWrite(left, &left_copy, sizeof(left_copy), PMTEST_HERE);

    Node node_copy = *node;
    node_copy.items[index] = right->items[0];
    pool_.txWrite(node, &node_copy, sizeof(node_copy), PMTEST_HERE);

    Node right_copy = *right;
    for (int i = 0; i + 1 < static_cast<int>(right_copy.n); i++)
        right_copy.items[i] = right_copy.items[i + 1];
    if (!isLeaf(right)) {
        for (int i = 0; i < static_cast<int>(right_copy.n); i++)
            right_copy.slots[i] = right_copy.slots[i + 1];
        right_copy.slots[right_copy.n] = nullptr;
    }
    right_copy.items[right_copy.n - 1] = Item{};
    right_copy.n--;
    pool_.txWrite(right, &right_copy, sizeof(right_copy), PMTEST_HERE);
}

void
BtreeMap::rotateRight(Node *node, int index)
{
    // Mirror image of rotateLeft: move the separator down into the
    // right child and the left child's last item up.
    Node *left = node->slots[index];
    Node *right = node->slots[index + 1];

    pool_.txAdd(node, sizeof(Node), PMTEST_HERE);
    pool_.txAdd(left, sizeof(Node), PMTEST_HERE);
    pool_.txAdd(right, sizeof(Node), PMTEST_HERE);

    Node right_copy = *right;
    for (int i = static_cast<int>(right_copy.n); i > 0; i--)
        right_copy.items[i] = right_copy.items[i - 1];
    if (!isLeaf(right)) {
        for (int i = static_cast<int>(right_copy.n) + 1; i > 0; i--)
            right_copy.slots[i] = right_copy.slots[i - 1];
        right_copy.slots[0] = left->slots[left->n];
    }
    right_copy.items[0] = node->items[index];
    right_copy.n++;
    pool_.txWrite(right, &right_copy, sizeof(right_copy), PMTEST_HERE);

    Node node_copy = *node;
    node_copy.items[index] = left->items[left->n - 1];
    pool_.txWrite(node, &node_copy, sizeof(node_copy), PMTEST_HERE);

    Node left_copy = *left;
    left_copy.items[left_copy.n - 1] = Item{};
    if (!isLeaf(left))
        left_copy.slots[left_copy.n] = nullptr;
    left_copy.n--;
    pool_.txWrite(left, &left_copy, sizeof(left_copy), PMTEST_HERE);
}

void
BtreeMap::mergeChildren(Node *node, int index)
{
    Node *left = node->slots[index];
    Node *right = node->slots[index + 1];

    pool_.txAdd(node, sizeof(Node), PMTEST_HERE);
    pool_.txAdd(left, sizeof(Node), PMTEST_HERE);

    Node left_copy = *left;
    left_copy.items[left_copy.n] = node->items[index];
    for (int i = 0; i < static_cast<int>(right->n); i++)
        left_copy.items[left_copy.n + 1 + i] = right->items[i];
    if (!isLeaf(right)) {
        for (int i = 0; i <= static_cast<int>(right->n); i++)
            left_copy.slots[left_copy.n + 1 + i] = right->slots[i];
    }
    left_copy.n += right->n + 1;
    pool_.txWrite(left, &left_copy, sizeof(left_copy), PMTEST_HERE);

    Node node_copy = *node;
    for (int i = index; i + 1 < static_cast<int>(node_copy.n); i++) {
        node_copy.items[i] = node_copy.items[i + 1];
        node_copy.slots[i + 1] = node_copy.slots[i + 2];
    }
    node_copy.items[node_copy.n - 1] = Item{};
    node_copy.slots[node_copy.n] = nullptr;
    node_copy.n--;
    pool_.txWrite(node, &node_copy, sizeof(node_copy), PMTEST_HERE);

    pool_.freeRaw(right);
}

void
BtreeMap::fillChild(Node *node, int index)
{
    if (index > 0 && node->slots[index - 1]->n > kMinItems) {
        rotateRight(node, index - 1);
    } else if (index < static_cast<int>(node->n) &&
               node->slots[index + 1]->n > kMinItems) {
        rotateLeft(node, index);
    } else if (index < static_cast<int>(node->n)) {
        mergeChildren(node, index);
    } else {
        mergeChildren(node, index - 1);
    }
}

bool
BtreeMap::removeFromNode(Node *node, uint64_t key, bool free_value)
{
    int i = 0;
    while (i < static_cast<int>(node->n) && node->items[i].key < key)
        i++;

    if (i < static_cast<int>(node->n) && node->items[i].key == key) {
        if (isLeaf(node)) {
            if (free_value)
                freeItemValue(node->items[i]);
            removeFromLeaf(node, i);
            return true;
        }
        if (node->slots[i]->n > kMinItems) {
            const Item pred = maxItem(node->slots[i]);
            if (free_value)
                freeItemValue(node->items[i]);
            setItem(node, i, pred);
            // The predecessor now appears twice; remove the deep copy
            // without freeing its value (ownership moved up).
            return removeFromNode(node->slots[i], pred.key, false);
        }
        if (node->slots[i + 1]->n > kMinItems) {
            const Item succ = minItem(node->slots[i + 1]);
            if (free_value)
                freeItemValue(node->items[i]);
            setItem(node, i, succ);
            return removeFromNode(node->slots[i + 1], succ.key, false);
        }
        mergeChildren(node, i);
        return removeFromNode(node->slots[i], key, free_value);
    }

    if (isLeaf(node))
        return false;

    if (node->slots[i]->n <= kMinItems) {
        fillChild(node, i);
        // fillChild may have merged or shifted children; restart the
        // search from this node with its updated layout.
        return removeFromNode(node, key, free_value);
    }
    return removeFromNode(node->slots[i], key, free_value);
}

bool
BtreeMap::remove(uint64_t key)
{
    if (!root_->root || !findItem(root_->root, key))
        return false;

    if (emitCheckers)
        PMTEST_TX_CHECKER_START();
    {
        txlib::TxScope tx(pool_, PMTEST_HERE);
        removeFromNode(root_->root, key, true);

        if (root_->root->n == 0) {
            // Shrink: an empty root hands over to its only child.
            Node *old_root = root_->root;
            pool_.txAdd(root_, sizeof(Root), PMTEST_HERE);
            pool_.txAssign(&root_->root, old_root->slots[0],
                           PMTEST_HERE);
            pool_.freeRaw(old_root);
        } else {
            pool_.txAdd(&root_->count, sizeof(root_->count),
                        PMTEST_HERE);
        }
        pool_.txAssign(&root_->count, root_->count - 1, PMTEST_HERE);
    }
    if (emitCheckers)
        PMTEST_TX_CHECKER_END();
    pmtestSendTrace();
    return true;
}

size_t
BtreeMap::count() const
{
    return root_->count;
}

} // namespace pmtest::pmds
