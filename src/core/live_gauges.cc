#include "core/live_gauges.hh"

namespace pmtest::core
{

namespace
{

/** Gauge of one leaf source; drained-ness needs the ingest state. */
obs::SourceGauge
leafGauge(const TraceSource &leaf, bool ingest_done)
{
    obs::SourceGauge g;
    g.label = leaf.name();
    const size_t count = leaf.traceCount();
    g.tracesTotalKnown = count != TraceSource::kUnknownCount;
    g.tracesTotal = g.tracesTotalKnown ? count : 0;
    g.bytesTotal = leaf.sizeBytes();
    g.tracesConsumed = leaf.consumedTraces();
    g.bytesConsumed = leaf.consumedBytes();
    // A counted source is drained when every trace is out; an
    // unknown-total one (live capture) only once ingest() returned.
    g.drained = g.tracesTotalKnown
                    ? g.tracesConsumed >= g.tracesTotal
                    : ingest_done;
    return g;
}

void
collectLeaves(const TraceSource &source, bool ingest_done,
              std::vector<obs::SourceGauge> *out)
{
    if (const auto *multi =
            dynamic_cast<const MultiTraceSource *>(&source)) {
        for (const auto &child : multi->children())
            collectLeaves(*child, ingest_done, out);
        return;
    }
    out->push_back(leafGauge(source, ingest_done));
}

} // namespace

obs::PoolGauges
samplePoolGauges(const EnginePool &pool)
{
    const PoolStats stats = pool.stats();
    obs::PoolGauges g;
    g.valid = true;
    g.tracesSubmitted = stats.tracesSubmitted;
    g.tracesCompleted = stats.tracesCompleted;
    g.queueDepths.reserve(stats.workers.size());
    for (const auto &w : stats.workers)
        g.queueDepths.push_back(w.queueDepth);
    return g;
}

obs::IngestGauges
sampleIngestGauges(const TraceSource &source,
                   const IngestProgress *progress)
{
    obs::IngestGauges g;
    g.valid = true;
    g.done = progress &&
             progress->done.load(std::memory_order_acquire);
    collectLeaves(source, g.done, &g.sources);
    return g;
}

std::function<obs::PoolGauges()>
poolGaugeSampler(const EnginePool &pool)
{
    return [&pool] { return samplePoolGauges(pool); };
}

std::function<obs::IngestGauges()>
ingestGaugeSampler(const TraceSource &source,
                   const IngestProgress *progress)
{
    return [&source, progress] {
        return sampleIngestGauges(source, progress);
    };
}

} // namespace pmtest::core
