#include "core/api.hh"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "trace/trace_capture.hh"
#include "util/logging.hh"

namespace pmtest
{

namespace
{

/**
 * The process-wide framework state behind the PMTest_* API. One
 * instance exists at a time; pmtestInit()/pmtestExit() manage it.
 */
/** Build engine-pool options from the public config. */
core::PoolOptions
poolOptions(const Config &config)
{
    core::PoolOptions options;
    options.model = config.model;
    options.workers = config.workers;
    options.queueCapacity = config.queueCapacity;
    options.workStealing = config.workStealing;
    return options;
}

class Framework
{
  public:
    explicit Framework(const Config &config)
        : config_(config), pool_(poolOptions(config))
    {
    }

    /** Pending batched traces must reach the pool before it drains. */
    ~Framework() { flushBatches(); }

    const Config &config() const { return config_; }
    core::EnginePool &enginePool() { return pool_; }

    /**
     * Submit one sealed trace, honoring Config::traceBatch: small
     * traces accumulate in a per-thread buffer and go to the pool as
     * one dispatch unit.
     */
    void
    submitSealed(Trace trace)
    {
        if (config_.traceBatch <= 1) {
            pool_.submit(std::move(trace));
            return;
        }
        ThreadBatch &batch = threadBatch();
        std::vector<Trace> full;
        {
            std::lock_guard<std::mutex> lock(batch.mutex);
            batch.traces.push_back(std::move(trace));
            if (batch.traces.size() >= config_.traceBatch)
                full = std::move(batch.traces);
        }
        if (!full.empty())
            pool_.submitBatch(std::move(full));
    }

    /** Push every thread's batched traces into the pool. */
    void
    flushBatches()
    {
        if (config_.traceBatch <= 1)
            return;
        std::lock_guard<std::mutex> lock(captureMutex_);
        for (auto &batch : batches_) {
            std::vector<Trace> pending;
            {
                std::lock_guard<std::mutex> bl(batch->mutex);
                pending = std::move(batch->traces);
            }
            if (!pending.empty())
                pool_.submitBatch(std::move(pending));
        }
    }

    /** Get or create the calling thread's capture. */
    TraceCapture &
    capture()
    {
        // Keyed by a process-wide framework generation, not by the
        // instance address: a re-initialized framework can reuse the
        // previous instance's address, which must not resurrect a
        // stale capture pointer.
        thread_local TraceCapture *tls = nullptr;
        thread_local uint64_t tls_generation = 0;
        if (tls == nullptr || tls_generation != generation_) {
            std::lock_guard<std::mutex> lock(captureMutex_);
            captures_.push_back(std::make_unique<TraceCapture>(
                static_cast<uint32_t>(captures_.size())));
            tls = captures_.back().get();
            tls_generation = generation_;
        }
        return *tls;
    }

    /** This instance's generation (set at construction). */
    void setGeneration(uint64_t g) { generation_ = g; }

    void
    regVar(const std::string &name, const void *addr, size_t size)
    {
        std::lock_guard<std::mutex> lock(varMutex_);
        vars_[name] = {addr, size};
    }

    void
    unregVar(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(varMutex_);
        vars_.erase(name);
    }

    bool
    getVar(const std::string &name, const void **addr, size_t *size)
    {
        std::lock_guard<std::mutex> lock(varMutex_);
        auto it = vars_.find(name);
        if (it == vars_.end())
            return false;
        if (addr)
            *addr = it->second.first;
        if (size)
            *size = it->second.second;
        return true;
    }

    std::atomic<pmem::PmPool *> attachedPool{nullptr};
    std::atomic<uint64_t> tracesSubmitted{0};
    std::atomic<uint64_t> opsRecorded{0};
    std::function<void(Trace &&)> traceSink;
    std::mutex traceSinkMutex;

  private:
    /** One thread's not-yet-submitted sealed traces. */
    struct ThreadBatch
    {
        std::mutex mutex;
        std::vector<Trace> traces;
    };

    /** Get or create the calling thread's batch buffer. */
    ThreadBatch &
    threadBatch()
    {
        thread_local ThreadBatch *tls = nullptr;
        thread_local uint64_t tls_generation = 0;
        if (tls == nullptr || tls_generation != generation_) {
            std::lock_guard<std::mutex> lock(captureMutex_);
            batches_.push_back(std::make_unique<ThreadBatch>());
            tls = batches_.back().get();
            tls_generation = generation_;
        }
        return *tls;
    }

    Config config_;
    uint64_t generation_ = 0;
    core::EnginePool pool_;
    std::mutex captureMutex_;
    std::vector<std::unique_ptr<TraceCapture>> captures_;
    std::vector<std::unique_ptr<ThreadBatch>> batches_;
    std::mutex varMutex_;
    std::unordered_map<std::string, std::pair<const void *, size_t>> vars_;
};

std::unique_ptr<Framework> g_framework;
std::mutex g_framework_mutex;

Framework *
framework()
{
    return g_framework.get();
}

/** Record one op into the calling thread's capture, if tracking. */
inline void
recordOp(const PmOp &op)
{
    Framework *fw = framework();
    if (!fw)
        return;
    TraceCapture &cap = fw->capture();
    if (!cap.enabled())
        return;
    cap.record(op);
    fw->opsRecorded.fetch_add(1, std::memory_order_relaxed);
}

/** Mirror helpers for the attached crash-simulation pool. */
inline pmem::CacheSim *
attachedCache()
{
    Framework *fw = framework();
    if (!fw)
        return nullptr;
    pmem::PmPool *pool = fw->attachedPool.load(std::memory_order_acquire);
    return pool ? pool->cache() : nullptr;
}

} // namespace

void
pmtestInit(const Config &config)
{
    std::lock_guard<std::mutex> lock(g_framework_mutex);
    if (g_framework)
        fatal("PMTest_INIT: framework already initialized");
    static std::atomic<uint64_t> generation{0};
    g_framework = std::make_unique<Framework>(config);
    g_framework->setGeneration(
        generation.fetch_add(1, std::memory_order_relaxed) + 1);
}

void
pmtestExit()
{
    std::lock_guard<std::mutex> lock(g_framework_mutex);
    g_framework.reset();
}

bool
pmtestInitialized()
{
    return framework() != nullptr;
}

void
pmtestThreadInit()
{
    Framework *fw = framework();
    if (fw)
        fw->capture(); // allocate this thread's capture
}

void
pmtestStart()
{
    Framework *fw = framework();
    if (fw)
        fw->capture().start();
}

void
pmtestEnd()
{
    Framework *fw = framework();
    if (fw)
        fw->capture().stop();
}

bool
pmtestTracking()
{
    Framework *fw = framework();
    return fw && fw->capture().enabled();
}

void
pmtestExclude(const void *addr, size_t size)
{
    recordOp(PmOp{OpType::Exclude, reinterpret_cast<uint64_t>(addr),
                  size, 0, 0, {}});
}

void
pmtestInclude(const void *addr, size_t size)
{
    recordOp(PmOp{OpType::Include, reinterpret_cast<uint64_t>(addr),
                  size, 0, 0, {}});
}

void
pmtestRegVar(const std::string &name, const void *addr, size_t size)
{
    Framework *fw = framework();
    if (fw)
        fw->regVar(name, addr, size);
}

void
pmtestUnregVar(const std::string &name)
{
    Framework *fw = framework();
    if (fw)
        fw->unregVar(name);
}

bool
pmtestGetVar(const std::string &name, const void **addr, size_t *size)
{
    Framework *fw = framework();
    return fw && fw->getVar(name, addr, size);
}

void
pmtestSendTrace()
{
    Framework *fw = framework();
    if (!fw)
        return;
    TraceCapture &cap = fw->capture();
    if (cap.pendingOps() == 0)
        return;
    fw->tracesSubmitted.fetch_add(1, std::memory_order_relaxed);
    if (fw->traceSink) {
        std::lock_guard<std::mutex> lock(fw->traceSinkMutex);
        fw->traceSink(cap.seal());
        return;
    }
    fw->submitSealed(cap.seal());
}

void
pmtestSetTraceSink(std::function<void(Trace &&)> sink)
{
    Framework *fw = framework();
    if (!fw)
        fatal("pmtestSetTraceSink: framework not initialized");
    std::lock_guard<std::mutex> lock(fw->traceSinkMutex);
    fw->traceSink = std::move(sink);
}

void
pmtestGetResult()
{
    Framework *fw = framework();
    if (!fw)
        return;
    fw->flushBatches();
    fw->enginePool().drain();
}

Trace
pmtestSealTrace()
{
    Framework *fw = framework();
    if (!fw)
        return Trace();
    return fw->capture().seal();
}

void
pmtestSubmitTrace(Trace trace)
{
    Framework *fw = framework();
    if (!fw)
        return;
    fw->tracesSubmitted.fetch_add(1, std::memory_order_relaxed);
    fw->enginePool().submit(std::move(trace));
}

core::Report
pmtestResults()
{
    Framework *fw = framework();
    if (!fw)
        return core::Report();
    fw->flushBatches();
    return fw->enginePool().results();
}

void
pmtestClearResults()
{
    Framework *fw = framework();
    if (!fw)
        return;
    fw->flushBatches();
    fw->enginePool().clearResults();
}

void
pmtestIsPersist(const void *addr, size_t size, SourceLocation loc)
{
    recordOp(PmOp::isPersist(reinterpret_cast<uint64_t>(addr), size, loc));
}

void
pmtestIsOrderedBefore(const void *addr_a, size_t size_a,
                      const void *addr_b, size_t size_b,
                      SourceLocation loc)
{
    recordOp(PmOp::isOrderedBefore(reinterpret_cast<uint64_t>(addr_a),
                                   size_a,
                                   reinterpret_cast<uint64_t>(addr_b),
                                   size_b, loc));
}

void
pmtestTxCheckerStart(SourceLocation loc)
{
    recordOp(PmOp{OpType::TxCheckStart, 0, 0, 0, 0, loc});
}

void
pmtestTxCheckerEnd(SourceLocation loc)
{
    recordOp(PmOp{OpType::TxCheckEnd, 0, 0, 0, 0, loc});
}

void
pmStore(void *dst, const void *src, size_t size, SourceLocation loc)
{
    std::memcpy(dst, src, size);
    if (pmem::CacheSim *cache = attachedCache()) {
        pmem::PmPool *pool =
            framework()->attachedPool.load(std::memory_order_acquire);
        if (pool->contains(dst))
            cache->store(pool->offsetOf(dst), src, size);
    }
    recordOp(PmOp::write(reinterpret_cast<uint64_t>(dst), size, loc));
}

void
pmClwb(const void *addr, size_t size, SourceLocation loc)
{
    if (pmem::CacheSim *cache = attachedCache()) {
        pmem::PmPool *pool =
            framework()->attachedPool.load(std::memory_order_acquire);
        if (pool->contains(addr))
            cache->clwb(pool->offsetOf(addr), size);
    }
    recordOp(PmOp::clwb(reinterpret_cast<uint64_t>(addr), size, loc));
}

void
pmClflush(const void *addr, size_t size, SourceLocation loc)
{
    if (pmem::CacheSim *cache = attachedCache()) {
        pmem::PmPool *pool =
            framework()->attachedPool.load(std::memory_order_acquire);
        if (pool->contains(addr))
            cache->clflush(pool->offsetOf(addr), size);
    }
    recordOp(PmOp{OpType::Clflush, reinterpret_cast<uint64_t>(addr),
                  size, 0, 0, loc});
}

void
pmSfence(SourceLocation loc)
{
    if (pmem::CacheSim *cache = attachedCache())
        cache->sfence();
    recordOp(PmOp::sfence(loc));
}

void
pmOfence(SourceLocation loc)
{
    // The cache model does not track HOPS ordering queues; crash
    // simulation is only supported under the x86 model (DESIGN.md).
    recordOp(PmOp::ofence(loc));
}

void
pmDfence(SourceLocation loc)
{
    if (pmem::CacheSim *cache = attachedCache())
        cache->flushAll();
    recordOp(PmOp::dfence(loc));
}

void
pmDcCvap(const void *addr, size_t size, SourceLocation loc)
{
    // Same durability mechanics as clwb for the cache simulation.
    if (pmem::CacheSim *cache = attachedCache()) {
        pmem::PmPool *pool =
            framework()->attachedPool.load(std::memory_order_acquire);
        if (pool->contains(addr))
            cache->clwb(pool->offsetOf(addr), size);
    }
    recordOp(PmOp::dcCvap(reinterpret_cast<uint64_t>(addr), size, loc));
}

void
pmDsb(SourceLocation loc)
{
    if (pmem::CacheSim *cache = attachedCache())
        cache->sfence();
    recordOp(PmOp::dsb(loc));
}

void
pmTxBegin(SourceLocation loc)
{
    recordOp(PmOp{OpType::TxBegin, 0, 0, 0, 0, loc});
}

void
pmTxEnd(SourceLocation loc)
{
    recordOp(PmOp{OpType::TxEnd, 0, 0, 0, 0, loc});
}

void
pmTxAdd(const void *addr, size_t size, SourceLocation loc)
{
    recordOp(PmOp{OpType::TxAdd, reinterpret_cast<uint64_t>(addr), size,
                  0, 0, loc});
}

void
pmtestAttachPool(pmem::PmPool *pool)
{
    Framework *fw = framework();
    if (!fw)
        fatal("pmtestAttachPool: framework not initialized");
    if (pool && !pool->simulating())
        fatal("pmtestAttachPool: pool was not built with crash "
              "simulation enabled");
    fw->attachedPool.store(pool, std::memory_order_release);
}

void
pmtestDetachPool()
{
    Framework *fw = framework();
    if (fw)
        fw->attachedPool.store(nullptr, std::memory_order_release);
}

pmem::PmPool *
pmtestAttachedPool()
{
    Framework *fw = framework();
    return fw ? fw->attachedPool.load(std::memory_order_acquire) : nullptr;
}

uint64_t
pmtestTracesSubmitted()
{
    Framework *fw = framework();
    return fw ? fw->tracesSubmitted.load(std::memory_order_relaxed) : 0;
}

uint64_t
pmtestOpsRecorded()
{
    Framework *fw = framework();
    return fw ? fw->opsRecorded.load(std::memory_order_relaxed) : 0;
}

core::PoolStats
pmtestPoolStats()
{
    Framework *fw = framework();
    return fw ? fw->enginePool().stats() : core::PoolStats();
}

} // namespace pmtest
