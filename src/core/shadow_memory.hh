/**
 * @file
 * Shadow memory: per-address-range persistency status plus the global
 * epoch counter (paper §4.4). Each modified range carries a persist
 * interval (when the data may/must have reached PM) and a flush
 * interval (when an issued writeback may/must have completed). The
 * persistency models drive the transitions; the checkers read the
 * intervals.
 */

#ifndef PMTEST_CORE_SHADOW_MEMORY_HH
#define PMTEST_CORE_SHADOW_MEMORY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/interval.hh"
#include "core/interval_map.hh"

namespace pmtest::core
{

/** Persistency status of one address range. */
struct RangeStatus
{
    Interval persist{};      ///< persist interval (valid if hasPersist)
    Interval flush{};        ///< flush interval (valid if hasFlush)
    bool hasPersist = false; ///< range was written in this trace
    bool hasFlush = false;   ///< a writeback was issued for the range
};

/** Outcome of scanning a clwb target range, used for WARN rules. */
struct ClwbScan
{
    bool redundant = false;   ///< an open flush interval already covers
                              ///< part of the range (flushed twice
                              ///< without an intervening fence)
    bool unmodified = false;  ///< no write recorded anywhere in range
    bool alreadyClean = false;///< writes exist but all are persisted
                              ///< and no new data is pending
};

/**
 * The per-trace shadow memory. Checked traces are independent: each
 * check starts from a pristine shadow. Engines reuse one instance
 * across traces via reset(), which restores the pristine state while
 * keeping the interval maps' flat storage allocated — steady-state
 * checking performs no shadow allocations.
 */
class ShadowMemory
{
  public:
    /**
     * Restore the pristine (start-of-trace) state. Equivalent to
     * constructing a fresh instance except that the backing storage
     * of the interval maps keeps its capacity.
     */
    void
    reset()
    {
        timestamp_ = 0;
        map_.clear();
        pendingFlushes_.clear();
        openWrites_.clear();
    }

    /** Current global timestamp (epoch). */
    Epoch timestamp() const { return timestamp_; }

    /** Advance the epoch (every ordering point does this). */
    void bumpTimestamp() { timestamp_++; }

    /**
     * Record a store: clears any existing status over the range, then
     * opens a persist interval at the current epoch.
     */
    void recordWrite(const AddrRange &range);

    /**
     * Record @p n stores at once through the interval maps' batched
     * assign, which sorts nothing and searches once per run instead
     * of once per store. REQUIRES: ranges sorted by addr and pairwise
     * disjoint — under that precondition the resulting shadow state
     * (including entry fragmentation, which leaks into finding
     * messages) is byte-identical to n recordWrite calls in any
     * order. The engine groups consecutive trace writes and flushes
     * the group early when a write would overlap a batched one.
     */
    void recordWriteBatch(const AddrRange *ranges, size_t n);

    /**
     * Scan the range for the clwb WARN rules, without mutating.
     * @see ClwbScan
     */
    ClwbScan scanClwb(const AddrRange &range) const;

    /**
     * Record a writeback: opens a flush interval at the current epoch
     * over the range (preserving persist intervals), and remembers the
     * range as fence-pending.
     */
    void recordClwb(const AddrRange &range);

    /**
     * Complete fence-pending writebacks: close their flush intervals
     * and the persist intervals they cover at the current epoch.
     * Call after bumpTimestamp(), per the paper's sfence rule.
     */
    void completePendingFlushes();

    /**
     * Close the persist intervals of ALL writes recorded so far at the
     * current epoch (the HOPS dfence rule).
     */
    void completeAllWrites();

    /**
     * Whether every persist interval overlapping @p range is closed by
     * the current epoch (the isPersist condition). Ranges that were
     * never written pass vacuously.
     * @param first_open if non-null and the check fails, receives the
     *        first still-open subrange.
     */
    bool allPersisted(const AddrRange &range,
                      AddrRange *first_open = nullptr) const;

    /**
     * Collect the persist intervals overlapping @p range (clipped),
     * in address order.
     */
    std::vector<std::pair<AddrRange, Interval>>
    persistIntervals(const AddrRange &range) const;

    /**
     * Bounding range of the bytes in @p range whose persist interval
     * is open but which have no open flush interval — the bytes a
     * fence alone cannot persist. Empty when every pending byte
     * already has a writeback in flight (a fence suffices); the fix
     * synthesizers use this to choose between InsertFence and
     * InsertFlushFence.
     */
    AddrRange unflushedSpan(const AddrRange &range) const;

    /** Whether any write was recorded in @p range. */
    bool anyWrite(const AddrRange &range) const;

    /** Number of distinct status entries (diagnostics). */
    size_t entryCount() const { return map_.size(); }

    /**
     * Number of distinct fence-pending writeback ranges. Repeated
     * clwb of the same line coalesces to one entry, keeping
     * completePendingFlushes() linear in *distinct* ranges rather
     * than in issued flushes.
     */
    size_t pendingFlushCount() const { return pendingFlushes_.size(); }

    /** Number of distinct written-since-dfence ranges (HOPS). */
    size_t openWriteCount() const { return openWrites_.size(); }

  private:
    Epoch timestamp_ = 0;
    IntervalMap<RangeStatus> map_;
    /**
     * Ranges clwb'ed since the last fence, coalesced at record time:
     * an interval set, so duplicate flushes of the same line cannot
     * accumulate within an epoch.
     */
    IntervalMap<uint8_t> pendingFlushes_;
    /** Ranges written since the last dfence (HOPS bookkeeping). */
    IntervalMap<uint8_t> openWrites_;
    /**
     * Reused staging buffer for the fence-completion walks: the
     * pending/open entries are collected here (already sorted and
     * disjoint by map invariant) and applied to map_ with one batched
     * overlap walk instead of one binary search per entry.
     */
    std::vector<AddrRange> scratch_;
};

} // namespace pmtest::core

#endif // PMTEST_CORE_SHADOW_MEMORY_HH
