#include "core/arm_model.hh"

namespace pmtest::core
{

void
ArmModel::reportCvapWarns(const ClwbScan &scan, const PmOp &op,
                          Report &report, size_t op_index)
{
    const AddrRange range(op.addr, op.size);
    Finding f;
    f.severity = Severity::Warn;
    f.loc = op.loc;
    f.opIndex = op_index;
    // Same repair as the x86 clwb WARNs: drop the clean.
    f.hint.action = FixAction::DeleteFlush;
    f.hint.addr = op.addr;
    f.hint.size = op.size;
    f.hint.opIndex = op_index;
    f.hint.flushOp = op.type;
    if (scan.redundant) {
        f.kind = FindingKind::RedundantFlush;
        f.message = "DC CVAP of " + range.str() +
                    " duplicates an earlier clean that has not "
                    "been synchronized yet";
        report.add(std::move(f));
    } else if (scan.unmodified || scan.alreadyClean) {
        f.kind = FindingKind::UnnecessaryFlush;
        f.message = "DC CVAP of " + range.str() +
                    (scan.unmodified
                         ? " targets data never modified in this "
                           "trace"
                         : " targets data that is already "
                           "persistent");
        report.add(std::move(f));
    }
}

bool
ArmModel::checkOrderedBefore(const AddrRange &a, const AddrRange &b,
                             const ShadowMemory &shadow,
                             std::string *why) const
{
    // Strict model: same rule as x86 — A's persists must be
    // guaranteed complete before B's may begin.
    const auto a_ivals = shadow.persistIntervals(a);
    const auto b_ivals = shadow.persistIntervals(b);
    if (a_ivals.empty() || b_ivals.empty())
        return true;

    Epoch a_max_end = 0;
    AddrRange a_worst;
    for (const auto &[range, ival] : a_ivals) {
        if (ival.end >= a_max_end) {
            a_max_end = ival.end;
            a_worst = range;
        }
    }
    Epoch b_min_begin = kInfEpoch;
    AddrRange b_worst;
    for (const auto &[range, ival] : b_ivals) {
        if (ival.begin <= b_min_begin) {
            b_min_begin = ival.begin;
            b_worst = range;
        }
    }
    if (a_max_end <= b_min_begin)
        return true;

    if (why) {
        *why = "persist interval of " + a_worst.str() + " (ends " +
               (a_max_end == kInfEpoch ? std::string("never")
                                       : std::to_string(a_max_end)) +
               ") is not guaranteed before that of " + b_worst.str() +
               " (may begin at epoch " + std::to_string(b_min_begin) +
               ")";
    }
    return false;
}

} // namespace pmtest::core
