/**
 * @file
 * The checking engine (paper §4.4): sequentially iterates a trace,
 * updating shadow-memory persistency status for PM operations and
 * validating checker entries against it. On top of the low-level
 * rules it implements the transaction-aware high-level checkers
 * (§5.1): missing-backup detection via a log tree, incomplete-
 * transaction detection via auto-injected isPersist, and the
 * duplicate-log performance checker.
 */

#ifndef PMTEST_CORE_ENGINE_HH
#define PMTEST_CORE_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/interval_tree.hh"
#include "core/persistency_model.hh"
#include "core/report.hh"
#include "core/shadow_memory.hh"
#include "trace/trace.hh"

namespace pmtest::core
{

/**
 * Checks traces against a persistency model. Engines are cheap; each
 * worker thread owns one. check() is stateless across traces — every
 * trace gets fresh shadow memory, matching the paper's independence
 * of traces.
 */
class Engine
{
  public:
    explicit Engine(ModelKind kind);

    /** Check one trace and produce its report. */
    Report check(const Trace &trace);

    /** Total PM operations processed across all checked traces. */
    uint64_t opsProcessed() const { return opsProcessed_; }

    /** Total traces checked. */
    uint64_t tracesChecked() const { return tracesChecked_; }

    /** The model in use. */
    const PersistencyModel &model() const { return *model_; }

  private:
    /** Per-trace checking state. */
    struct TraceState
    {
        ShadowMemory shadow;
        /** Ranges removed from the testing scope. */
        IntervalMap<bool> exclusions;
        /** Current transaction nesting depth. */
        int txDepth = 0;
        /** Log tree: ranges backed up via TX_ADD in the open TX. */
        IntervalTree<SourceLocation> logTree;
        /** Whether a TX_CHECKER region is active. */
        bool txCheckActive = false;
        /** Writes observed inside the active TX_CHECKER region. */
        std::vector<std::pair<AddrRange, SourceLocation>> txWrites;
    };

    void handleOp(const PmOp &op, size_t index, TraceState &state,
                  Report &report);
    void handleChecker(const PmOp &op, size_t index, TraceState &state,
                       Report &report);
    void handleTxEvent(const PmOp &op, size_t index, TraceState &state,
                       Report &report);

    /** Whether the op's primary range is fully excluded from testing. */
    static bool excluded(const TraceState &state, const AddrRange &range);

    std::unique_ptr<PersistencyModel> model_;
    uint64_t opsProcessed_ = 0;
    uint64_t tracesChecked_ = 0;
};

} // namespace pmtest::core

#endif // PMTEST_CORE_ENGINE_HH
