/**
 * @file
 * The checking engine (paper §4.4): sequentially iterates a trace,
 * updating shadow-memory persistency status for PM operations and
 * validating checker entries against it. On top of the low-level
 * rules it implements the transaction-aware high-level checkers
 * (§5.1): missing-backup detection via a log tree, incomplete-
 * transaction detection via auto-injected isPersist, and the
 * duplicate-log performance checker.
 *
 * Hot-path organization:
 *  - The per-trace checking state (shadow memory, exclusion map, log
 *    tree, TX-checker write list) lives in the engine and is reset —
 *    clearing contents but retaining capacity — rather than rebuilt,
 *    so steady-state checking allocates nothing per trace.
 *  - The per-op loop is a kernel templated on the concrete
 *    persistency model (the model classes are final and define
 *    apply() inline), so model dispatch is selected once per trace by
 *    ModelKind and the per-op switch inlines instead of paying a
 *    virtual call per operation. Dispatch::Virtual retains the
 *    classic one-virtual-call-per-op path as an ablation baseline.
 */

#ifndef PMTEST_CORE_ENGINE_HH
#define PMTEST_CORE_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/interval_tree.hh"
#include "core/persistency_model.hh"
#include "core/report.hh"
#include "core/shadow_memory.hh"
#include "trace/trace.hh"

namespace pmtest::core
{

/**
 * Checks traces against a persistency model. Engines are cheap; each
 * worker thread owns one. check() is stateless across traces — every
 * trace observes a pristine shadow memory, matching the paper's
 * independence of traces — but the backing storage of that state is
 * reused from trace to trace.
 */
class Engine
{
  public:
    /** How the per-op model rules are invoked. */
    enum class Dispatch
    {
        Templated,      ///< model-specialized kernel with batched
                        ///< write runs (default; inlined)
        TemplatedPerOp, ///< model-specialized kernel, batching off
                        ///< (ablation baseline for the batch win)
        Virtual,        ///< one virtual call per op (the classic
                        ///< per-op oracle; ablation baseline)
    };

    explicit Engine(ModelKind kind,
                    Dispatch dispatch = Dispatch::Templated);

    /** Check one trace and produce its report. */
    Report check(const Trace &trace);

    /** Total PM operations processed across all checked traces. */
    uint64_t opsProcessed() const { return opsProcessed_; }

    /** Total traces checked. */
    uint64_t tracesChecked() const { return tracesChecked_; }

    /** The model in use. */
    const PersistencyModel &model() const { return *model_; }

    /** The dispatch mode in use. */
    Dispatch dispatch() const { return dispatch_; }

  private:
    /**
     * Per-trace checking state, owned by the engine and reset (not
     * reallocated) between traces.
     */
    struct TraceState
    {
        ShadowMemory shadow;
        /** Ranges removed from the testing scope. */
        IntervalMap<bool> exclusions;
        /** Current transaction nesting depth. */
        int txDepth = 0;
        /** Log tree: ranges backed up via TX_ADD in the open TX. */
        IntervalTree<SourceLocation> logTree;
        /** Whether a TX_CHECKER region is active. */
        bool txCheckActive = false;
        /** Writes observed inside the active TX_CHECKER region. */
        std::vector<std::pair<AddrRange, SourceLocation>> txWrites;

        /** Restore the start-of-trace state, retaining capacity. */
        void reset();
    };

    /** The per-trace loop, templated on the concrete model type. */
    template <typename M>
    void runTrace(M &model, const Trace &trace, Report &report);

    /**
     * Batched write runs (Dispatch::Templated only): consume the
     * maximal run of consecutive Write ops starting at @p i, applying
     * the per-op transaction checks immediately but deferring the
     * shadow updates into writeBatch_, flushed in one sorted batched
     * assign. A write overlapping a batched one forces a flush first,
     * so application order — and therefore shadow fragmentation,
     * which leaks into finding messages — is preserved exactly.
     * @return the index of the first op after the run.
     */
    size_t runWriteRun(const Trace &trace, size_t i,
                       TraceState &state, Report &report);

    /** Spill writeBatch_ into the shadow memory (sorted, batched). */
    void flushWriteBatch(TraceState &state);

    /**
     * The checks the per-op path performs on a Write before the model
     * applies it: missing-log detection and TX_CHECKER write
     * collection. Shared verbatim by the batched path.
     */
    void preWriteChecks(const PmOp &op, const AddrRange &range,
                        size_t index, TraceState &state,
                        Report &report);

    template <typename M>
    void handleOp(M &model, const PmOp &op, size_t index,
                  TraceState &state, Report &report);
    template <typename M>
    void handleChecker(const M &model, const PmOp &op, size_t index,
                       TraceState &state, Report &report);
    void handleTxEvent(const PmOp &op, size_t index, TraceState &state,
                       Report &report);

    /** Whether the op's primary range is fully excluded from testing. */
    static bool excluded(const TraceState &state, const AddrRange &range);

    /** Writes batched per flush (bounds the overlap scan). */
    static constexpr size_t kWriteBatchMax = 32;

    ModelKind kind_;
    Dispatch dispatch_;
    std::unique_ptr<PersistencyModel> model_;
    TraceState state_;
    /** Pending write ranges of the current run (reused storage). */
    std::vector<AddrRange> writeBatch_;
    uint64_t opsProcessed_ = 0;
    uint64_t tracesChecked_ = 0;
};

} // namespace pmtest::core

#endif // PMTEST_CORE_ENGINE_HH
