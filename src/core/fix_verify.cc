#include "core/fix_verify.hh"

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>

#include "core/engine.hh"
#include "obs/telemetry.hh"
#include "util/json.hh"

namespace pmtest::core
{

namespace
{

/**
 * Identity of a finding for before/after comparison. Deliberately
 * excludes the message (it embeds epoch numbers and intervals that
 * legitimately shift once ops are inserted) and the opIndex (it
 * shifts by construction); a finding "disappears" when no finding
 * with the same severity, kind and source site remains.
 */
using FindingKey = std::tuple<int, int, std::string, uint32_t>;

FindingKey
keyOf(const Finding &f)
{
    return {static_cast<int>(f.severity), static_cast<int>(f.kind),
            f.loc.valid() ? f.loc.file : "", f.loc.line};
}

using KeyCounts = std::map<FindingKey, size_t>;

KeyCounts
countFindings(const Report &report)
{
    KeyCounts counts;
    for (const Finding &f : report.findings())
        counts[keyOf(f)]++;
    return counts;
}

/**
 * Whether the patched replay proves the hint: strictly fewer findings
 * at the fixed site, and nowhere a finding the baseline did not
 * already have.
 */
bool
replayAccepts(const KeyCounts &baseline, const KeyCounts &patched,
              const FindingKey &fixed)
{
    const auto base_it = baseline.find(fixed);
    const size_t base_fixed =
        base_it == baseline.end() ? 0 : base_it->second;
    const auto patched_it = patched.find(fixed);
    const size_t patched_fixed =
        patched_it == patched.end() ? 0 : patched_it->second;
    if (patched_fixed >= base_fixed)
        return false;
    for (const auto &[key, count] : patched) {
        if (key == fixed)
            continue;
        const auto it = baseline.find(key);
        if (it == baseline.end() || count > it->second)
            return false;
    }
    return true;
}

} // namespace

HintVerifyStats
verifyHints(Report &report, const std::vector<Trace> &traces,
            ModelKind kind)
{
    HintVerifyStats stats;

    using TraceKey = std::pair<uint32_t, uint64_t>; // (fileId, traceId)
    std::map<TraceKey, const Trace *> byIdentity;
    for (const Trace &t : traces)
        byIdentity[{t.fileId(), t.id()}] = &t;

    // One engine for baselines and replays; baselines computed lazily
    // and cached so a trace with many hinted findings rechecks once.
    Engine engine(kind);
    std::map<TraceKey, KeyCounts> baselines;

    for (Finding &f : report.mutableFindings()) {
        if (!f.hint.valid())
            continue;
        stats.candidates++;
        const TraceKey tkey{f.fileId, f.traceId};
        const auto trace_it = byIdentity.find(tkey);
        if (trace_it == byIdentity.end()) {
            stats.missingTrace++;
            continue;
        }
        const Trace &trace = *trace_it->second;

        auto base_it = baselines.find(tkey);
        if (base_it == baselines.end()) {
            base_it = baselines
                          .emplace(tkey,
                                   countFindings(engine.check(trace)))
                          .first;
        }

        const Trace patched = applyFixHint(trace, f.hint);
        KeyCounts after;
        {
            obs::SpanScope span(obs::Stage::HintReplay);
            after = countFindings(engine.check(patched));
        }

        if (replayAccepts(base_it->second, after, keyOf(f))) {
            f.hint.verified = true;
            stats.verified++;
            obs::count(obs::Counter::HintsVerified);
        } else {
            stats.rejected++;
        }
    }
    return stats;
}

HintVerifyStats
verifyHints(Report &report, TraceSource &source, ModelKind kind,
            SourceError *error)
{
    std::vector<Trace> traces;
    for (;;) {
        const auto pull = source.pull(64, &traces, error);
        if (pull == TraceSource::Pull::End)
            break;
        if (pull == TraceSource::Pull::Error) {
            // Verify what we have; findings from the failed remainder
            // simply count as missingTrace.
            break;
        }
    }
    return verifyHints(report, traces, kind);
}

void
writeFixHintsJson(JsonWriter &w, const Report &report,
                  const HintVerifyStats &stats, ModelKind kind)
{
    w.beginObject();
    w.member("format", "pmtest-fixhints-v1");
    w.member("model", makeModel(kind)->name());

    w.key("stats").beginObject();
    w.member("candidates", static_cast<uint64_t>(stats.candidates));
    w.member("verified", static_cast<uint64_t>(stats.verified));
    w.member("rejected", static_cast<uint64_t>(stats.rejected));
    w.member("missing_trace",
             static_cast<uint64_t>(stats.missingTrace));
    w.endObject();

    w.key("hints").beginArray();
    for (const Finding &f : report.findings()) {
        if (!f.hint.valid())
            continue;
        w.beginObject();
        w.member("file_id", static_cast<uint64_t>(f.fileId));
        w.member("trace_id", f.traceId);
        w.member("op_index", static_cast<uint64_t>(f.opIndex));
        w.member("severity",
                 f.severity == Severity::Fail ? "fail" : "warn");
        w.member("kind", findingKindName(f.kind));
        w.member("loc", f.loc.str());
        w.member("message", f.message);
        w.member("action", fixActionName(f.hint.action));
        w.member("insert_at", f.hint.opIndex);
        if (f.hint.size > 0) {
            w.member("addr", f.hint.addr);
            w.member("size", f.hint.size);
        }
        if (f.hint.action == FixAction::InsertOrdering) {
            w.member("addr_b", f.hint.addrB);
            w.member("size_b", f.hint.sizeB);
            w.member("with_flush", f.hint.withFlush);
        }
        if (f.hint.action == FixAction::InsertTxEnd)
            w.member("count", static_cast<uint64_t>(f.hint.count));
        w.member("flush_op", opTypeName(f.hint.flushOp));
        w.member("fence_op", opTypeName(f.hint.fenceOp));
        w.member("verified", f.hint.verified);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace pmtest::core
