#include "core/trace_ingest.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "obs/telemetry.hh"
#include "util/clock.hh"

namespace pmtest::core
{

bool
ingestTraces(const TraceFileReader &reader, EnginePool &pool,
             const IngestOptions &options, IngestStats *ingest,
             ArenaSink *arenas)
{
    const size_t count = reader.traceCount();
    const size_t team =
        std::max<size_t>(1, std::min(options.decoders, count ? count : 1));
    const size_t batch_size = std::max<size_t>(1, options.batch);

    // Decoders claim runs of consecutive trace indices rather than
    // one index at a time: fewer shared-cursor bumps, and each claim
    // decodes into one batch flushed with a single submitBatch — on
    // oversubscribed machines (decoders + workers > cores) that
    // keeps the wakeup rate proportional to batches, not traces.
    const size_t chunk =
        std::max<size_t>(1,
                         std::min(batch_size,
                                  count / (team * 4) + 1));

    std::atomic<size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::atomic<uint64_t> decode_nanos{0};
    std::atomic<uint64_t> stall_nanos{0};
    std::atomic<uint64_t> decoded{0};
    std::mutex arena_mutex;

    auto decodeLoop = [&] {
        std::vector<Trace> batch;
        batch.reserve(batch_size);
        ArenaSink local_arenas;
        auto flush = [&] {
            if (batch.empty())
                return;
            // submitBatch blocks when every worker queue is full —
            // that wait is the ingest backpressure we account as
            // stall time (an unstalled submit is microseconds).
            obs::SpanScope span(obs::Stage::IngestSubmit);
            Timer stall;
            pool.submitBatch(std::move(batch));
            stall_nanos.fetch_add(stall.elapsedNs(),
                                  std::memory_order_relaxed);
            batch.clear();
            batch.reserve(batch_size);
        };

        while (!failed.load(std::memory_order_relaxed)) {
            const size_t begin =
                cursor.fetch_add(chunk, std::memory_order_relaxed);
            if (begin >= count)
                break;
            const size_t end = std::min(count, begin + chunk);
            size_t done = 0;
            Timer timer;
            {
                obs::SpanScope span(obs::Stage::IngestDecode);
                for (size_t i = begin; i < end; i++) {
                    DecodedTrace dt;
                    if (!reader.decode(i, &dt)) {
                        failed.store(true,
                                     std::memory_order_relaxed);
                        break;
                    }
                    local_arenas.push_back(std::move(dt.strings));
                    batch.push_back(std::move(dt.trace));
                    done++;
                }
            }
            decode_nanos.fetch_add(timer.elapsedNs(),
                                   std::memory_order_relaxed);
            decoded.fetch_add(done, std::memory_order_relaxed);
            obs::count(obs::Counter::ChunksDecoded);
            obs::count(obs::Counter::TracesDecoded, done);
            if (batch.size() >= batch_size)
                flush();
        }
        flush();
        if (arenas && !local_arenas.empty()) {
            std::lock_guard<std::mutex> lock(arena_mutex);
            arenas->insert(arenas->end(),
                           std::make_move_iterator(local_arenas.begin()),
                           std::make_move_iterator(local_arenas.end()));
        }
    };

    if (team == 1) {
        decodeLoop();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(team);
        for (size_t d = 0; d < team; d++) {
            threads.emplace_back([&decodeLoop, d] {
                obs::nameThread("decoder-" + std::to_string(d));
                decodeLoop();
            });
        }
        for (auto &t : threads)
            t.join();
    }

    if (ingest) {
        ingest->active = true;
        ingest->mmapBacked = reader.mmapBacked();
        ingest->decoders = static_cast<uint32_t>(team);
        ingest->bytesMapped = reader.sizeBytes();
        ingest->tracesDecoded =
            decoded.load(std::memory_order_relaxed);
        ingest->decodeNanos =
            decode_nanos.load(std::memory_order_relaxed);
        ingest->stallNanos =
            stall_nanos.load(std::memory_order_relaxed);
    }
    return !failed.load(std::memory_order_relaxed);
}

} // namespace pmtest::core
