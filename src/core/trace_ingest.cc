#include "core/trace_ingest.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "obs/telemetry.hh"
#include "util/clock.hh"

namespace pmtest::core
{

namespace
{

/**
 * Pinned placement: decoder d drains child sources d, d+team,
 * d+2*team, ... to completion, submitting each child's traces to
 * worker slot (child index % workers) via submitBatchTo. One shard's
 * traces stay on one engine whose TraceState — shadow chunk layout,
 * map hints — remains warm for that shard's address pattern, instead
 * of every engine touching every shard. Children stamp their own
 * (fileId, traceId) identity and reports canonicalize, so the merged
 * verdict is byte-identical to the shared-cursor path.
 */
bool
ingestPinned(MultiTraceSource &multi, EnginePool &pool,
             const IngestOptions &options, IngestStats *ingest,
             SourceError *error)
{
    auto &children = multi.children();
    const size_t workers = pool.workerCount();
    size_t team = std::max<size_t>(1, options.decoders);
    team = std::min(team, children.size());
    const size_t batch_size = std::max<size_t>(1, options.batch);

    std::atomic<bool> failed{false};
    std::atomic<uint64_t> decode_nanos{0};
    std::atomic<uint64_t> stall_nanos{0};
    std::atomic<uint64_t> decoded{0};
    std::mutex error_mutex;
    bool error_set = false;

    auto drainChild = [&](size_t c) {
        TraceSource &child = *children[c];
        const size_t slot = c % workers;
        std::vector<Trace> batch;
        batch.reserve(batch_size);
        auto flush = [&] {
            if (batch.empty())
                return;
            obs::SpanScope span(obs::Stage::IngestSubmit);
            Timer stall;
            pool.submitBatchTo(slot, std::move(batch));
            stall_nanos.fetch_add(stall.elapsedNs(),
                                  std::memory_order_relaxed);
            batch.clear();
            batch.reserve(batch_size);
        };

        while (!failed.load(std::memory_order_relaxed)) {
            const size_t before = batch.size();
            SourceError local_error;
            TraceSource::Pull result;
            Timer timer;
            {
                obs::SpanScope span(obs::Stage::IngestDecode);
                result = child.pull(batch_size, &batch, &local_error);
            }
            decode_nanos.fetch_add(timer.elapsedNs(),
                                   std::memory_order_relaxed);
            if (result == TraceSource::Pull::Error) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error_set) {
                    error_set = true;
                    if (error)
                        *error = std::move(local_error);
                }
                break;
            }
            if (result == TraceSource::Pull::End)
                break;
            const size_t done = batch.size() - before;
            decoded.fetch_add(done, std::memory_order_relaxed);
            if (options.progress)
                options.progress->tracesDecoded.fetch_add(
                    done, std::memory_order_relaxed);
            obs::count(obs::Counter::ChunksDecoded);
            obs::count(obs::Counter::TracesDecoded, done);
            if (batch.size() >= batch_size)
                flush();
        }
        flush();
    };

    auto decoderLoop = [&](size_t d) {
        for (size_t c = d; c < children.size(); c += team) {
            if (failed.load(std::memory_order_relaxed))
                break;
            drainChild(c);
        }
    };

    if (team == 1) {
        decoderLoop(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(team);
        for (size_t d = 0; d < team; d++) {
            threads.emplace_back([&decoderLoop, d] {
                obs::nameThread("decoder-" + std::to_string(d));
                decoderLoop(d);
            });
        }
        for (auto &t : threads)
            t.join();
    }

    const bool ok = !failed.load(std::memory_order_relaxed);
    if (ok)
        obs::count(obs::Counter::SourcesIngested,
                   multi.sourceCount());

    if (ingest) {
        ingest->active = true;
        ingest->mmapBacked = multi.mmapBacked();
        ingest->decoders = static_cast<uint32_t>(team);
        ingest->sources = multi.sourceCount();
        ingest->bytesMapped = multi.sizeBytes();
        ingest->tracesDecoded =
            decoded.load(std::memory_order_relaxed);
        ingest->decodeNanos =
            decode_nanos.load(std::memory_order_relaxed);
        ingest->stallNanos =
            stall_nanos.load(std::memory_order_relaxed);
    }
    if (options.progress)
        options.progress->done.store(true, std::memory_order_release);
    return ok;
}

} // namespace

bool
ingest(TraceSource &source, EnginePool &pool,
       const IngestOptions &options, IngestStats *ingest,
       SourceError *error)
{
    // Route multi-source inputs through the pinned placement when
    // asked (or when Auto decides it can help). Pinning needs real
    // worker queues to target, so inline pools always share.
    if (auto *multi = dynamic_cast<MultiTraceSource *>(&source)) {
        const bool pinned =
            pool.workerCount() > 0 &&
            (options.affinity == IngestOptions::Affinity::Pinned ||
             (options.affinity == IngestOptions::Affinity::Auto &&
              multi->children().size() >= 2 &&
              pool.workerCount() >= 2));
        if (pinned)
            return ingestPinned(*multi, pool, options, ingest, error);
    }

    const size_t count = source.traceCount();
    const bool counted = count != TraceSource::kUnknownCount;
    size_t team = std::max<size_t>(1, options.decoders);
    if (counted)
        team = std::min(team, std::max<size_t>(count, 1));
    const size_t batch_size = std::max<size_t>(1, options.batch);

    // Decoders claim runs of consecutive traces rather than one at a
    // time: fewer shared-cursor bumps inside the source, and each
    // claim decodes into one batch flushed with a single submitBatch
    // — on oversubscribed machines (decoders + workers > cores) that
    // keeps the wakeup rate proportional to batches, not traces. An
    // unknown-count source (live capture) just pulls full batches.
    const size_t chunk =
        counted ? std::max<size_t>(
                      1, std::min(batch_size, count / (team * 4) + 1))
                : batch_size;

    std::atomic<bool> failed{false};
    std::atomic<uint64_t> decode_nanos{0};
    std::atomic<uint64_t> stall_nanos{0};
    std::atomic<uint64_t> decoded{0};
    std::mutex error_mutex;
    bool error_set = false;

    auto decodeLoop = [&] {
        std::vector<Trace> batch;
        batch.reserve(batch_size);
        auto flush = [&] {
            if (batch.empty())
                return;
            // submitBatch blocks when every worker queue is full —
            // that wait is the ingest backpressure we account as
            // stall time (an unstalled submit is microseconds).
            obs::SpanScope span(obs::Stage::IngestSubmit);
            Timer stall;
            pool.submitBatch(std::move(batch));
            stall_nanos.fetch_add(stall.elapsedNs(),
                                  std::memory_order_relaxed);
            batch.clear();
            batch.reserve(batch_size);
        };

        while (!failed.load(std::memory_order_relaxed)) {
            const size_t before = batch.size();
            SourceError local_error;
            TraceSource::Pull result;
            Timer timer;
            {
                obs::SpanScope span(obs::Stage::IngestDecode);
                result = source.pull(chunk, &batch, &local_error);
            }
            decode_nanos.fetch_add(timer.elapsedNs(),
                                   std::memory_order_relaxed);
            if (result == TraceSource::Pull::Error) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error_set) {
                    error_set = true;
                    if (error)
                        *error = std::move(local_error);
                }
                break;
            }
            if (result == TraceSource::Pull::End)
                break;
            const size_t done = batch.size() - before;
            decoded.fetch_add(done, std::memory_order_relaxed);
            if (options.progress)
                options.progress->tracesDecoded.fetch_add(
                    done, std::memory_order_relaxed);
            obs::count(obs::Counter::ChunksDecoded);
            obs::count(obs::Counter::TracesDecoded, done);
            if (batch.size() >= batch_size)
                flush();
        }
        flush();
    };

    if (team == 1) {
        decodeLoop();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(team);
        for (size_t d = 0; d < team; d++) {
            threads.emplace_back([&decodeLoop, d] {
                obs::nameThread("decoder-" + std::to_string(d));
                decodeLoop();
            });
        }
        for (auto &t : threads)
            t.join();
    }

    const bool ok = !failed.load(std::memory_order_relaxed);
    if (ok)
        obs::count(obs::Counter::SourcesIngested,
                   source.sourceCount());

    if (ingest) {
        ingest->active = true;
        ingest->mmapBacked = source.mmapBacked();
        ingest->decoders = static_cast<uint32_t>(team);
        ingest->sources = source.sourceCount();
        ingest->bytesMapped = source.sizeBytes();
        ingest->tracesDecoded =
            decoded.load(std::memory_order_relaxed);
        ingest->decodeNanos =
            decode_nanos.load(std::memory_order_relaxed);
        ingest->stallNanos =
            stall_nanos.load(std::memory_order_relaxed);
    }
    if (options.progress)
        options.progress->done.store(true, std::memory_order_release);
    return ok;
}

} // namespace pmtest::core
