/**
 * @file
 * Persist intervals — the paper's central abstraction (§3.1, §4.4).
 *
 * Execution is divided into epochs delimited by fences; a write's
 * persist interval (E1, E2) says the write may reach persistence at
 * any time between epoch E1 and epoch E2. An unbounded end (infinity)
 * means nothing in the trace guarantees the write ever persists.
 */

#ifndef PMTEST_CORE_INTERVAL_HH
#define PMTEST_CORE_INTERVAL_HH

#include <cstdint>
#include <limits>
#include <string>

namespace pmtest::core
{

/** Epoch counter type; incremented at every ordering point. */
using Epoch = uint64_t;

/** Sentinel for an unbounded interval end. */
constexpr Epoch kInfEpoch = std::numeric_limits<Epoch>::max();

/**
 * A persist (or flush) interval (begin, end).
 *
 * `begin` is the epoch in which the operation executed — it may take
 * effect any time from then on. `end` is the epoch at which it is
 * guaranteed to have taken effect, or kInfEpoch while open.
 */
struct Interval
{
    Epoch begin = 0;
    Epoch end = kInfEpoch;

    constexpr Interval() = default;
    constexpr Interval(Epoch b, Epoch e) : begin(b), end(e) {}

    /** An interval opened at @p b with no guarantee yet. */
    static constexpr Interval open(Epoch b) { return {b, kInfEpoch}; }

    /** Whether the interval is still unbounded. */
    constexpr bool isOpen() const { return end == kInfEpoch; }

    /** Close the interval at epoch @p e (no-op if already closed). */
    void
    close(Epoch e)
    {
        if (isOpen())
            end = e;
    }

    /**
     * Whether two intervals overlap, i.e. neither is guaranteed to
     * complete before the other may begin. Matches the paper's Fig. 7:
     * (0,1) and (1,inf) do NOT overlap — the first is done by epoch 1,
     * the second cannot begin before epoch 1.
     */
    constexpr bool
    overlaps(const Interval &other) const
    {
        return end > other.begin && other.end > begin;
    }

    /** Whether this interval is guaranteed complete before @p other. */
    constexpr bool
    endsBefore(const Interval &other) const
    {
        return end <= other.begin;
    }

    /** Whether this interval completes no later than epoch @p e. */
    constexpr bool
    closedBy(Epoch e) const
    {
        return end != kInfEpoch && end <= e;
    }

    constexpr bool
    operator==(const Interval &other) const
    {
        return begin == other.begin && end == other.end;
    }

    /** Render as "(b,e)" with infinity shown as "inf". */
    std::string
    str() const
    {
        std::string s = "(" + std::to_string(begin) + ",";
        s += isOpen() ? "inf" : std::to_string(end);
        s += ")";
        return s;
    }
};

/** A half-open address range [addr, addr + size). */
struct AddrRange
{
    uint64_t addr = 0;
    uint64_t size = 0;

    constexpr AddrRange() = default;
    constexpr AddrRange(uint64_t a, uint64_t s) : addr(a), size(s) {}

    constexpr uint64_t end() const { return addr + size; }
    constexpr bool empty() const { return size == 0; }

    /** Whether two ranges share at least one byte. */
    constexpr bool
    overlaps(const AddrRange &other) const
    {
        return !empty() && !other.empty() && addr < other.end() &&
               other.addr < end();
    }

    /** Whether @p other is entirely within this range. */
    constexpr bool
    covers(const AddrRange &other) const
    {
        return addr <= other.addr && other.end() <= end();
    }

    /** Render as "[addr,end)". */
    std::string
    str() const
    {
        return "[0x" + toHex(addr) + ",0x" + toHex(end()) + ")";
    }

  private:
    static std::string
    toHex(uint64_t v)
    {
        static const char *digits = "0123456789abcdef";
        if (v == 0)
            return "0";
        std::string s;
        while (v) {
            s.insert(s.begin(), digits[v & 0xf]);
            v >>= 4;
        }
        return s;
    }
};

} // namespace pmtest::core

#endif // PMTEST_CORE_INTERVAL_HH
