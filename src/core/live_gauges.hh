/**
 * @file
 * Gauge extraction for the live metrics publisher. The obs layer
 * links below core (obs → util only), so MetricsPublisher cannot see
 * EnginePool or TraceSource; instead these factories close over them
 * and hand obs plain gauge structs. One sampler call is one
 * EnginePool::stats() snapshot / one walk of the source tree — cheap
 * enough for a 1 s tick, and thread-safe at any moment of a run
 * (stats() locks internally; consumedTraces()/consumedBytes() are
 * atomic or mutex-guarded in every source).
 *
 * Lifetime: the returned std::functions capture raw references. Call
 * MetricsService::freeze() (which final-samples and drops them)
 * before the pool/source they point at is destroyed.
 */

#ifndef PMTEST_CORE_LIVE_GAUGES_HH
#define PMTEST_CORE_LIVE_GAUGES_HH

#include <functional>

#include "core/engine_pool.hh"
#include "core/trace_ingest.hh"
#include "obs/metrics_publisher.hh"
#include "trace/trace_source.hh"

namespace pmtest::core
{

/** One-shot dispatch gauge snapshot from @p pool. */
obs::PoolGauges samplePoolGauges(const EnginePool &pool);

/**
 * One-shot ingest gauge snapshot: one SourceGauge per leaf of
 * @p source (MultiTraceSource children are walked; anything else is
 * a single leaf), plus the done flag from @p progress (may be null —
 * then done stays false and unknown-total sources never report
 * drained).
 */
obs::IngestGauges sampleIngestGauges(const TraceSource &source,
                                     const IngestProgress *progress);

/** Sampler closure over @p pool for PublisherOptions::poolSampler. */
std::function<obs::PoolGauges()> poolGaugeSampler(
    const EnginePool &pool);

/** Sampler closure for PublisherOptions::ingestSampler. */
std::function<obs::IngestGauges()> ingestGaugeSampler(
    const TraceSource &source, const IngestProgress *progress);

} // namespace pmtest::core

#endif // PMTEST_CORE_LIVE_GAUGES_HH
