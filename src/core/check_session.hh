/**
 * @file
 * The check-session layer: one place that owns the run lifecycle the
 * command-line tools used to hand-wire — open the inputs as
 * TraceSources, drain them through core::ingest into an EnginePool,
 * canonicalize the merged Report, and drive every output surface
 * (stdout report, stats, metrics JSON, trace events, fix hints,
 * structured events, live metrics, linger). The tools reduce to flag
 * parsing: build a CheckPlan, finalize() it, hand it to
 * runCheckTool().
 *
 * Three run shapes share the layer:
 *
 *  - **Plain**: everything pmtest_check always did, unchanged.
 *  - **Worker** (`--worker=i/N --report-out=FILE`): run shard i of an
 *    N-way split of the input set — the byte-balanced index slices of
 *    a single v2 file, or files j with j % N == i of a multi-file set
 *    (fileId = j preserved) — and emit a `pmtest-report-v1` wire
 *    report instead of stdout output.
 *  - **Coordinator** (`--distribute=N`): fork N worker processes,
 *    gather their wire reports, mergeReports() them, and print
 *    exactly what the sequential run prints — the canonical report is
 *    byte-identical because shard slices partition the input and
 *    canonicalize() is order-independent. Worker lifecycle is
 *    observable: worker.spawn / worker.exit events in the event log
 *    and workers_spawned / workers_failed telemetry counters. A
 *    worker that dies (signal, or exit status other than the 0/1
 *    verdict codes) fails the whole run with exit 2, naming the
 *    shard.
 *
 * Forking discipline: the coordinator forks all workers *before*
 * starting any service thread (metrics publisher, scrape server), so
 * a fork never clones a thread holding a lock.
 */

#ifndef PMTEST_CORE_CHECK_SESSION_HH
#define PMTEST_CORE_CHECK_SESSION_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/trace_ingest.hh"
#include "obs/metrics_service.hh"
#include "trace/trace_reader.hh"

namespace pmtest::core
{

/**
 * Everything a checking run needs, parsed once by the tool and
 * validated once by finalize(). Field defaults match the tool
 * defaults, so a tool only writes what its flags set.
 */
struct CheckPlan
{
    std::string tool = "pmtest_check";

    // Checking options.
    ModelKind model = ModelKind::X86;
    bool summary = false;
    bool quiet = false;
    bool showStats = false;
    size_t maxFindings = 50;
    /** SIZE_MAX = no explicit flag (resolve via env/core layout). */
    size_t workers = static_cast<size_t>(-1);
    size_t queueCap = 0;
    size_t batch = 1;
    /** 0 = no explicit flag (resolve via env/core layout). */
    size_t decoders = 0;
    size_t shards = 1;
    IngestOptions::Affinity affinity = IngestOptions::Affinity::Auto;
    IngestMode ingestMode = IngestMode::Auto;

    // Output surfaces.
    std::string metricsJsonPath;
    std::string traceEventsPath;
    size_t spanSample = 1;
    bool fixHints = false;
    std::string fixHintsPath = "-";

    // Live observability.
    int32_t metricsPort = -1; ///< -1 = no scrape server
    size_t metricsIntervalMs = 1000;
    std::string eventLogPath;
    bool progress = false;
    bool metricsLinger = false;

    // Distributed checking.
    uint32_t workerIndex = 0;
    uint32_t workerCount = 0; ///< > 0 = run as shard workerIndex/N
    size_t distribute = 0;    ///< > 0 = coordinator forking N workers
    /**
     * Worker mode: where the wire report goes (required). Coordinator
     * mode: optional — keeps the per-worker reports at PATH.<i> and
     * writes the merged wire report to PATH. Plain mode: optional —
     * serializes the final report to PATH.
     */
    std::string reportOutPath;

    /** Raw positional arguments (files or directories). */
    std::vector<std::string> inputArgs;

    /** Expanded input files; filled by finalize(). */
    std::vector<std::string> inputs;

    /**
     * Expand directories, reject duplicate inputs, and validate flag
     * combinations. @return false with @p error set; @p usage_hint
     * (when provided) tells the tool whether to print its usage text
     * after the message (flag-combination errors) or not (input/IO
     * errors), matching the historical tool behavior.
     */
    bool finalize(std::string *error, bool *usage_hint = nullptr);
};

/**
 * The observability bracket every tool run shares: a MetricsService
 * plus uniform run_start / run_stop events. Extracted so tools that
 * are not trace-checking sessions (pmtest_recall's campaign runner)
 * ride the identical lifecycle as CheckSession.
 */
class SessionServices
{
  public:
    /**
     * Start the service (event log first; see MetricsService::start).
     * @return false with @p error set — callers exit 2.
     */
    bool start(obs::ServiceOptions options, std::string *error);

    obs::MetricsService &service() { return service_; }
    obs::EventLog &eventLog() { return service_.eventLog(); }

    /** Emit run_start: {"tool": tool, ...extra}. */
    void emitRunStart(
        const char *tool,
        const std::function<void(JsonWriter &)> &extra = nullptr);

    /** Emit run_stop: {...extra, "exit_code": code}. */
    void emitRunStop(
        int exit_code,
        const std::function<void(JsonWriter &)> &extra = nullptr);

    /** Forwarded to MetricsService. */
    void freeze() { service_.freeze(); }
    void stop() { service_.stop(); }

  private:
    obs::MetricsService service_;
};

/**
 * One in-process checking run over a finalized plan (plain or worker
 * shape; coordinator plans go through runDistributedCheck). run()
 * owns the whole lifecycle and every output surface.
 */
class CheckSession
{
  public:
    explicit CheckSession(const CheckPlan &plan) : plan_(plan) {}

    /**
     * Execute the session. @return 0 (no FAIL findings), 1 (FAIL
     * findings), or 2 (input/IO errors, messages on stderr).
     */
    int run();

  private:
    const CheckPlan &plan_;
};

/**
 * Coordinator: scatter the plan across plan.distribute forked worker
 * processes, gather and merge their wire reports, and print the
 * sequential run's byte-identical output. @return the merged verdict
 * (0/1), or 2 when a worker failed or a report was unreadable.
 */
int runDistributedCheck(const CheckPlan &plan);

/** Dispatch a finalized plan to its run shape. */
int runCheckTool(const CheckPlan &plan);

} // namespace pmtest::core

#endif // PMTEST_CORE_CHECK_SESSION_HH
