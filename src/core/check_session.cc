#include "core/check_session.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/engine_pool.hh"
#include "core/fix_verify.hh"
#include "core/live_gauges.hh"
#include "core/report_io.hh"
#include "core/stats_json.hh"
#include "obs/telemetry.hh"
#include "trace/trace_source.hh"
#include "util/cpu.hh"
#include "util/json.hh"

namespace pmtest::core
{

namespace
{

namespace fs = std::filesystem;

/**
 * Expand positional arguments into the flat input-file list:
 * directories contribute their regular files in sorted name order,
 * plain paths pass through.
 */
bool
expandInputs(const std::vector<std::string> &args,
             std::vector<std::string> *files, std::string *error)
{
    for (const auto &arg : args) {
        std::error_code ec;
        if (fs::is_directory(arg, ec)) {
            std::vector<std::string> entries;
            for (const auto &entry : fs::directory_iterator(arg, ec)) {
                if (entry.is_regular_file())
                    entries.push_back(entry.path().string());
            }
            if (ec) {
                *error = arg + ": cannot read directory";
                return false;
            }
            if (entries.empty()) {
                *error = arg + ": no trace files in directory";
                return false;
            }
            std::sort(entries.begin(), entries.end());
            files->insert(files->end(), entries.begin(),
                          entries.end());
        } else {
            files->push_back(arg);
        }
    }
    return true;
}

/**
 * Reject the same file appearing twice in the input set (directly or
 * via directory expansion): duplicate traces would double every
 * finding. Compares canonicalized paths so "a.trc" and "./a.trc"
 * collide.
 */
bool
rejectDuplicates(const std::vector<std::string> &files,
                 std::string *error)
{
    std::vector<std::string> seen;
    for (const auto &file : files) {
        std::error_code ec;
        fs::path canon = fs::weakly_canonical(file, ec);
        const std::string key = ec ? file : canon.string();
        if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
            *error = "duplicate input: " + file;
            return false;
        }
        seen.push_back(key);
    }
    return true;
}

/**
 * Thread counts resolved with the usual precedence: explicit flag
 * beats PMTEST_WORKERS / PMTEST_DECODERS, which beat the
 * hardware-derived layout (see util/cpu.hh). Both the session (to
 * size its pool) and the coordinator (to print the header the
 * sequential run would print) resolve through here.
 */
void
resolveThreads(const CheckPlan &plan, size_t *workers,
               size_t *decoders)
{
    const util::PipelineLayout layout = util::defaultPipelineLayout();
    *workers = plan.workers == static_cast<size_t>(-1)
                   ? layout.workers
                   : plan.workers;
    *decoders = plan.decoders == 0 ? layout.decoders : plan.decoders;
}

/**
 * Build the trace source a plain (non-worker) run checks: one source
 * per input file (fileId = input order), or the byte-balanced shards
 * of a single v2 file. Also the re-open path of the fix-hints replay
 * pass, which needs identical fileId assignment.
 */
std::unique_ptr<TraceSource>
buildPlainSource(const CheckPlan &plan, std::string *error)
{
    if (plan.shards > 1) {
        std::shared_ptr<const TraceFileReader> reader =
            TraceFileReader::open(plan.inputs[0], plan.ingestMode,
                                  error);
        if (!reader) {
            if (error->rfind(plan.inputs[0], 0) != 0)
                *error = plan.inputs[0] + ": " + *error;
            return nullptr;
        }
        return std::make_unique<MultiTraceSource>(shardTraceSource(
            std::move(reader), plan.inputs[0], 0, plan.shards));
    }
    if (plan.inputs.size() == 1)
        return openTraceSource(plan.inputs[0], plan.ingestMode, 0,
                               error);
    std::vector<std::unique_ptr<TraceSource>> children;
    children.reserve(plan.inputs.size());
    for (size_t i = 0; i < plan.inputs.size(); i++) {
        auto child =
            openTraceSource(plan.inputs[i], plan.ingestMode,
                            static_cast<uint32_t>(i), error);
        if (!child)
            return nullptr;
        children.push_back(std::move(child));
    }
    return std::make_unique<MultiTraceSource>(std::move(children));
}

/**
 * Build worker workerIndex/workerCount's slice of the input set: for
 * a single input, index slice workerIndex of an N-way
 * shardTraceSource split; for a file set, files j with
 * j % N == workerIndex, keeping fileId = j. Shard slices partition
 * the sequential input exactly, which is what makes the merged
 * distributed report byte-identical. A worker past the end of a
 * short split legitimately has nothing to do: *empty is set and
 * nullptr returned with no error.
 */
std::unique_ptr<TraceSource>
buildWorkerSource(const CheckPlan &plan, bool *empty,
                  std::string *error)
{
    *empty = false;
    if (plan.inputs.size() == 1) {
        std::shared_ptr<const TraceFileReader> reader =
            TraceFileReader::open(plan.inputs[0], plan.ingestMode,
                                  error);
        if (!reader) {
            if (error->rfind(plan.inputs[0], 0) != 0)
                *error = plan.inputs[0] + ": " + *error;
            return nullptr;
        }
        auto slices = shardTraceSource(std::move(reader),
                                       plan.inputs[0], 0,
                                       plan.workerCount);
        if (plan.workerIndex >= slices.size()) {
            *empty = true;
            return nullptr;
        }
        return std::move(slices[plan.workerIndex]);
    }
    std::vector<std::unique_ptr<TraceSource>> children;
    for (size_t j = plan.workerIndex; j < plan.inputs.size();
         j += plan.workerCount) {
        auto child =
            openTraceSource(plan.inputs[j], plan.ingestMode,
                            static_cast<uint32_t>(j), error);
        if (!child)
            return nullptr;
        children.push_back(std::move(child));
    }
    if (children.empty()) {
        *empty = true;
        return nullptr;
    }
    if (children.size() == 1)
        return std::move(children[0]);
    return std::make_unique<MultiTraceSource>(std::move(children));
}

/** One "  source NAME: ..." line per leaf source. */
void
printSourceStats(const TraceSource &source)
{
    if (const auto *multi =
            dynamic_cast<const MultiTraceSource *>(&source)) {
        for (const auto &child : multi->children())
            printSourceStats(*child);
        return;
    }
    std::printf("  source %s: %zu traces, %llu ops, %llu bytes %s\n",
                source.name().c_str(), source.traceCount(),
                static_cast<unsigned long long>(source.totalOps()),
                static_cast<unsigned long long>(source.sizeBytes()),
                source.mmapBacked() ? "mmapped" : "buffered");
}

/**
 * One "  oracle: ..." line when a ground-truth oracle ran in this
 * process (pmtest_check itself does not run one; the line appears
 * when the binary is linked into an oracle-driving harness). Covered
 * vs tested is the representative-mode pruning win.
 */
void
printOracleStats()
{
    const auto snap = obs::Telemetry::instance().metrics();
    const uint64_t tested =
        snap.counter(obs::Counter::OracleStatesTested);
    if (tested == 0)
        return;
    const uint64_t covered =
        snap.counter(obs::Counter::OracleStatesCovered);
    const uint64_t hits = snap.counter(obs::Counter::OracleMemoHits);
    std::printf("  oracle: %llu states tested covering %llu "
                "(%.1fx reduction), %llu memo hits\n",
                static_cast<unsigned long long>(tested),
                static_cast<unsigned long long>(covered),
                tested ? double(covered) / double(tested) : 1.0,
                static_cast<unsigned long long>(hits));
}

/** One "source_open" event per leaf source of @p source. */
void
emitSourceOpenEvents(obs::EventLog &log, const TraceSource &source)
{
    if (const auto *multi =
            dynamic_cast<const MultiTraceSource *>(&source)) {
        for (const auto &child : multi->children())
            emitSourceOpenEvents(log, *child);
        return;
    }
    log.emit(obs::EventSeverity::Info, "source_open",
             [&](JsonWriter &w) {
                 w.member("source", source.name());
                 const size_t count = source.traceCount();
                 const bool known =
                     count != TraceSource::kUnknownCount;
                 w.member("traces_total_known", known);
                 w.member("traces_total",
                          known ? static_cast<uint64_t>(count) : 0);
                 w.member("bytes_total", source.sizeBytes());
                 w.member("mmap_backed", source.mmapBacked());
             });
}

/**
 * One "finding" event per canonical finding, capped so a pathological
 * input cannot turn the event log into a second copy of the report.
 */
void
emitFindingEvents(obs::EventLog &log, const Report &merged)
{
    constexpr size_t kMaxFindingEvents = 10000;
    size_t emitted = 0;
    for (const auto &finding : merged.findings()) {
        if (emitted++ == kMaxFindingEvents) {
            log.emit(obs::EventSeverity::Warn, "findings_truncated",
                     [&](JsonWriter &w) {
                         w.member("emitted", kMaxFindingEvents);
                         w.member("total",
                                  merged.findings().size());
                     });
            break;
        }
        const auto severity = finding.severity == Severity::Fail
                                  ? obs::EventSeverity::Error
                                  : obs::EventSeverity::Warn;
        log.emit(severity, "finding", [&](JsonWriter &w) {
            w.member("verdict", finding.severity == Severity::Fail
                                    ? "FAIL"
                                    : "WARN");
            w.member("kind", findingKindName(finding.kind));
            w.member("message", finding.message);
            w.member("loc", finding.loc.str());
            w.member("file_id",
                     static_cast<uint64_t>(finding.fileId));
            w.member("trace_id", finding.traceId);
            w.member("op_index",
                     static_cast<uint64_t>(finding.opIndex));
            w.member("hint_valid", finding.hint.valid());
            w.member("hint_verified", finding.hint.verified);
        });
    }
}

/** The stdout report: header line plus summary or finding list. */
void
printReportStdout(const CheckPlan &plan, size_t traces, size_t ops,
                  size_t workers, const Report &merged)
{
    if (plan.quiet)
        return;
    const std::string display =
        plan.inputs.size() == 1
            ? plan.inputs[0]
            : std::to_string(plan.inputs.size()) + " files";
    std::printf("%s: %zu traces, %zu PM operations, model=%s, "
                "%zu workers\n",
                display.c_str(), traces, ops,
                makeModel(plan.model)->name(), workers);
    if (plan.summary) {
        std::printf("%s", merged.summaryStr().c_str());
        return;
    }
    std::printf("%zu FAIL, %zu WARN\n", merged.failCount(),
                merged.warnCount());
    size_t shown = 0;
    for (const auto &finding : merged.findings()) {
        if (shown++ == plan.maxFindings) {
            std::printf("  ... (%zu more; use --summary)\n",
                        merged.findings().size() - shown + 1);
            break;
        }
        std::printf("  %s\n", finding.str().c_str());
    }
}

/**
 * Write the unified metrics snapshot: run identity, verdict counts,
 * the shared pool/ingest stats rendering, and the telemetry section
 * (counters, per-stage latency histograms, span accounting). Worker
 * and coordinator runs tag themselves ("worker": "i/N",
 * "distribute": N).
 */
bool
writeMetricsDoc(const CheckPlan &plan, size_t traces, size_t ops,
                size_t workers, size_t sources, const Report &merged,
                const PoolStats &stats)
{
    std::string joined;
    for (const auto &input : plan.inputs) {
        if (!joined.empty())
            joined += ",";
        joined += input;
    }
    JsonWriter w;
    w.beginObject();
    w.member("schema", "pmtest-metrics-v1");
    w.member("tool", plan.tool.c_str());
    w.member("trace_file", joined);
    w.member("model", makeModel(plan.model)->name());
    w.member("traces", traces);
    w.member("ops", ops);
    w.member("workers", workers);
    w.member("sources", sources);
    if (plan.workerCount > 0)
        w.member("worker", std::to_string(plan.workerIndex) + "/" +
                               std::to_string(plan.workerCount));
    if (plan.distribute > 0)
        w.member("distribute",
                 static_cast<uint64_t>(plan.distribute));
    w.key("verdict").beginObject();
    w.member("fail", merged.failCount());
    w.member("warn", merged.warnCount());
    w.member("findings", merged.findings().size());
    w.endObject();
    w.key("pool");
    writePoolStatsJson(w, stats);
    w.key("telemetry");
    obs::Telemetry::instance().writeMetricsJson(w);
    w.endObject();

    std::string error;
    if (!writeJsonFile(plan.metricsJsonPath, w, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return false;
    }
    return true;
}

volatile std::sig_atomic_t g_linger_stop = 0;

void
lingerSignalHandler(int)
{
    g_linger_stop = 1;
}

/**
 * --metrics-linger: keep answering scrapes with the frozen final
 * sample until somebody tells us to go (the CI smoke leg curls here,
 * then SIGTERMs). The verdict exit code is preserved.
 */
void
lingerUntilSignalled(obs::MetricsService &service)
{
    if (service.port() == 0)
        return;
    std::signal(SIGINT, lingerSignalHandler);
    std::signal(SIGTERM, lingerSignalHandler);
    std::fprintf(stderr,
                 "pmtest: run complete; metrics linger on "
                 "http://127.0.0.1:%u (SIGINT/SIGTERM to exit)\n",
                 static_cast<unsigned>(service.port()));
    while (!g_linger_stop)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

} // namespace

bool
CheckPlan::finalize(std::string *error, bool *usage_hint)
{
    const auto usage_error = [&](std::string message) {
        *error = std::move(message);
        if (usage_hint)
            *usage_hint = true;
        return false;
    };
    const auto input_error = [&](std::string message) {
        *error = std::move(message);
        if (usage_hint)
            *usage_hint = false;
        return false;
    };

    if (inputArgs.empty())
        return usage_error("missing input trace file");
    std::string expand_error;
    inputs.clear();
    if (!expandInputs(inputArgs, &inputs, &expand_error))
        return input_error(expand_error);
    if (!rejectDuplicates(inputs, &expand_error))
        return input_error(expand_error);

    if (shards > 1 && inputs.size() != 1)
        return usage_error("--shards needs exactly one input file "
                           "(got " +
                           std::to_string(inputs.size()) + ")");
    if (shards > 1 && ingestMode == IngestMode::Stream)
        return usage_error("--shards needs an indexed (v2) input; "
                           "remove --ingest=stream");

    if (workerCount > 0 && distribute > 0)
        return usage_error(
            "--worker and --distribute are mutually exclusive");
    if (workerCount > 0) {
        if (workerIndex >= workerCount)
            return usage_error(
                "--worker index out of range (want i/N with i < N)");
        if (reportOutPath.empty())
            return usage_error("--worker needs --report-out=FILE");
    }
    if (workerCount > 0 || distribute > 0) {
        const char *mode =
            workerCount > 0 ? "--worker" : "--distribute";
        if (shards > 1)
            return usage_error(std::string(mode) +
                               " cannot combine with --shards");
        if (fixHints)
            return usage_error(std::string(mode) +
                               " cannot combine with --fix-hints");
        if (metricsLinger)
            return usage_error(std::string(mode) +
                               " cannot combine with "
                               "--metrics-linger");
    }
    if (distribute > 0) {
        if (showStats)
            return usage_error("--stats is per-process; not "
                               "supported with --distribute");
        if (!traceEventsPath.empty())
            return usage_error("--trace-events is per-process; not "
                               "supported with --distribute");
    }
    return true;
}

bool
SessionServices::start(obs::ServiceOptions options,
                       std::string *error)
{
    return service_.start(std::move(options), error);
}

void
SessionServices::emitRunStart(
    const char *tool, const std::function<void(JsonWriter &)> &extra)
{
    service_.eventLog().emit(obs::EventSeverity::Info, "run_start",
                             [&](JsonWriter &w) {
                                 w.member("tool", tool);
                                 if (extra)
                                     extra(w);
                             });
}

void
SessionServices::emitRunStop(
    int exit_code, const std::function<void(JsonWriter &)> &extra)
{
    service_.eventLog().emit(obs::EventSeverity::Info, "run_stop",
                             [&](JsonWriter &w) {
                                 if (extra)
                                     extra(w);
                                 w.member("exit_code", exit_code);
                             });
}

int
CheckSession::run()
{
    const CheckPlan &plan = plan_;
    const bool worker_mode = plan.workerCount > 0;

    // Span collection must start before the pipeline so capture-side
    // and ingest-side spans land in the timeline.
    if (!plan.traceEventsPath.empty())
        obs::Telemetry::instance().enableSpans(plan.spanSample);
    obs::nameThread("main");

    std::unique_ptr<TraceSource> source;
    bool worker_empty = false;
    {
        std::string error;
        source = worker_mode
                     ? buildWorkerSource(plan, &worker_empty, &error)
                     : buildPlainSource(plan, &error);
        if (!source && !worker_empty) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
    }

    size_t workers = 0, decoders = 0;
    resolveThreads(plan, &workers, &decoders);

    const size_t trace_count = source ? source->traceCount() : 0;
    const size_t total_ops =
        source ? static_cast<size_t>(source->totalOps()) : 0;
    const size_t source_count = source ? source->sourceCount() : 0;

    PoolOptions options;
    options.model = plan.model;
    options.workers = workers;
    options.queueCapacity = plan.queueCap;

    Report merged;
    PoolStats stats;
    size_t pool_workers = 0;
    bool ingest_ok = true;
    SourceError ingest_error;
    SessionServices services; ///< outlives the pool (linger)
    {
        EnginePool pool(options);
        IngestProgress ingest_progress;

        obs::ServiceOptions service_options;
        service_options.tool = plan.tool;
        service_options.metricsPort = plan.metricsPort;
        service_options.intervalMs = plan.metricsIntervalMs;
        service_options.progress = plan.progress;
        service_options.eventLogPath = plan.eventLogPath;
        service_options.poolSampler = poolGaugeSampler(pool);
        if (source)
            service_options.ingestSampler =
                ingestGaugeSampler(*source, &ingest_progress);
        std::string service_error;
        if (!services.start(std::move(service_options),
                            &service_error)) {
            std::fprintf(stderr, "%s\n", service_error.c_str());
            return 2;
        }
        services.emitRunStart(plan.tool.c_str(), [&](JsonWriter &w) {
            w.member("model", makeModel(plan.model)->name());
            w.member("inputs", plan.inputs.size());
            w.member("workers", workers);
            w.member("decoders", decoders);
            if (worker_mode) {
                w.member("worker",
                         static_cast<uint64_t>(plan.workerIndex));
                w.member("of",
                         static_cast<uint64_t>(plan.workerCount));
            }
        });
        if (source)
            emitSourceOpenEvents(services.eventLog(), *source);

        if (source) {
            IngestOptions ingest_options;
            ingest_options.decoders = decoders;
            ingest_options.batch = plan.batch;
            ingest_options.affinity = plan.affinity;
            ingest_options.progress = &ingest_progress;
            IngestStats ingest_stats;
            ingest_ok = ingest(*source, pool, ingest_options,
                               &ingest_stats, &ingest_error);
            merged = pool.results();
            stats = pool.stats();
            stats.ingest = ingest_stats;
        }
        pool_workers = pool.workerCount();

        // Final sample + sampler detach before the pool dies; the
        // scrape server keeps serving the frozen sample.
        services.freeze();
    }
    if (!ingest_ok) {
        std::fprintf(stderr, "%s\n", ingest_error.str().c_str());
        return 2;
    }

    // Canonical (fileId, traceId, opIndex) order: any shard/decoder/
    // worker configuration prints a byte-identical report for the
    // same input set.
    merged.canonicalize();

    // The detect→repair→verify pass: re-open the inputs (the primary
    // source is drained), patch each hinted finding's trace, replay
    // it through the same engine, and emit the fixhints document.
    if (plan.fixHints) {
        std::string error;
        auto replay_source = buildPlainSource(plan, &error);
        if (!replay_source) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
        SourceError replay_error;
        const HintVerifyStats hint_stats = verifyHints(
            merged, *replay_source, plan.model, &replay_error);
        if (!replay_error.message.empty())
            std::fprintf(stderr, "fix-hints replay: %s\n",
                         replay_error.str().c_str());

        JsonWriter w;
        writeFixHintsJson(w, merged, hint_stats, plan.model);
        std::string write_error;
        if (!writeJsonFile(plan.fixHintsPath, w, &write_error)) {
            std::fprintf(stderr, "%s\n", write_error.c_str());
            return 2;
        }
        if (plan.fixHintsPath != "-" && !plan.quiet) {
            std::printf("fix hints: %zu candidates, %zu verified, "
                        "%zu rejected -> %s\n",
                        hint_stats.candidates, hint_stats.verified,
                        hint_stats.rejected,
                        plan.fixHintsPath.c_str());
        }
    }

    // A worker's stdout belongs to the coordinator; its report goes
    // out as pmtest-report-v1 wire bytes instead.
    if (!plan.reportOutPath.empty()) {
        ReportMeta meta;
        meta.workerIndex = plan.workerIndex;
        meta.workerCount = plan.workerCount;
        meta.traceCount = trace_count;
        meta.totalOps = total_ops;
        meta.sourceCount = source_count;
        meta.model = plan.model;
        std::string error;
        if (!saveReportFile(plan.reportOutPath, merged, meta,
                            &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
    }

    if (!worker_mode) {
        printReportStdout(plan, trace_count, total_ops, pool_workers,
                          merged);
        // An explicit --stats request wins over --quiet.
        if (plan.showStats) {
            if (source && source->sourceCount() > 1)
                printSourceStats(*source);
            std::printf("%s", stats.str().c_str());
            printOracleStats();
        }
    }
    // The machine-readable outputs are files; they are written
    // whatever the stdout flags say.
    if (!plan.metricsJsonPath.empty()) {
        if (!writeMetricsDoc(plan, trace_count, total_ops,
                             pool_workers, source_count, merged,
                             stats))
            return 2;
    }
    if (!plan.traceEventsPath.empty()) {
        std::string error;
        if (!obs::Telemetry::instance().writeTraceEventsFile(
                plan.traceEventsPath, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 2;
        }
    }

    const int exit_code = merged.failCount() == 0 ? 0 : 1;

    // Findings go out after the fix-hints replay so hint_verified is
    // final; run_stop closes the audit trail.
    emitFindingEvents(services.eventLog(), merged);
    services.emitRunStop(exit_code, [&](JsonWriter &w) {
        w.member("traces", trace_count);
        w.member("ops", total_ops);
        w.member("fail", merged.failCount());
        w.member("warn", merged.warnCount());
    });

    if (plan.metricsLinger)
        lingerUntilSignalled(services.service());
    services.stop();
    return exit_code;
}

int
runDistributedCheck(const CheckPlan &plan)
{
    const uint32_t n = static_cast<uint32_t>(plan.distribute);
    const bool keep_reports = !plan.reportOutPath.empty();
    const std::string base =
        keep_reports
            ? plan.reportOutPath
            : (fs::temp_directory_path() /
               ("pmtest-report-" + std::to_string(getpid())))
                  .string();
    std::vector<std::string> report_paths;
    report_paths.reserve(n);
    for (uint32_t i = 0; i < n; i++)
        report_paths.push_back(base + "." + std::to_string(i));

    const auto cleanup = [&] {
        if (keep_reports)
            return;
        for (const auto &path : report_paths) {
            std::error_code ec;
            fs::remove(path, ec);
        }
    };

    // The event-log exit-2 contract must hold before any worker is
    // spawned; MetricsService itself can only start after the forks
    // (it owns threads, and fork-without-exec must not clone them).
    if (!plan.eventLogPath.empty() && plan.eventLogPath != "-") {
        std::FILE *probe =
            std::fopen(plan.eventLogPath.c_str(), "a");
        if (!probe) {
            std::fprintf(stderr, "cannot write %s\n",
                         plan.eventLogPath.c_str());
            return 2;
        }
        std::fclose(probe);
    }

    // Scatter: fork every worker while this process is still
    // single-threaded.
    const char *fail_env = std::getenv("PMTEST_WORKER_FAIL");
    const long fail_index =
        fail_env ? std::strtol(fail_env, nullptr, 10) : -1;
    std::fflush(stdout);
    std::fflush(stderr);
    std::vector<pid_t> pids;
    pids.reserve(n);
    for (uint32_t i = 0; i < n; i++) {
        const pid_t pid = fork();
        if (pid < 0) {
            std::fprintf(stderr, "fork failed for worker %u/%u\n", i,
                         n);
            for (const pid_t started : pids)
                waitpid(started, nullptr, 0);
            cleanup();
            return 2;
        }
        if (pid == 0) {
            // Worker child: a fault-injection hook for the CI
            // worker-death leg, then the shard session.
            if (fail_index == static_cast<long>(i))
                raise(SIGKILL);
            CheckPlan worker = plan;
            worker.workerIndex = i;
            worker.workerCount = n;
            worker.distribute = 0;
            worker.reportOutPath = report_paths[i];
            worker.quiet = true;
            worker.showStats = false;
            worker.metricsPort = -1;
            worker.progress = false;
            worker.metricsLinger = false;
            worker.eventLogPath.clear();
            worker.metricsJsonPath.clear();
            worker.traceEventsPath.clear();
            CheckSession session(worker);
            std::_Exit(session.run());
        }
        pids.push_back(pid);
        obs::count(obs::Counter::WorkersSpawned);
    }

    size_t workers = 0, decoders = 0;
    resolveThreads(plan, &workers, &decoders);

    SessionServices services;
    obs::ServiceOptions service_options;
    service_options.tool = plan.tool;
    service_options.metricsPort = plan.metricsPort;
    service_options.intervalMs = plan.metricsIntervalMs;
    service_options.progress = plan.progress;
    service_options.eventLogPath = plan.eventLogPath;
    std::string service_error;
    if (!services.start(std::move(service_options),
                        &service_error)) {
        std::fprintf(stderr, "%s\n", service_error.c_str());
        for (const pid_t pid : pids)
            waitpid(pid, nullptr, 0);
        cleanup();
        return 2;
    }
    services.emitRunStart(plan.tool.c_str(), [&](JsonWriter &w) {
        w.member("model", makeModel(plan.model)->name());
        w.member("inputs", plan.inputs.size());
        w.member("workers", workers);
        w.member("decoders", decoders);
        w.member("distribute", static_cast<uint64_t>(n));
    });
    for (uint32_t i = 0; i < n; i++) {
        services.eventLog().emit(
            obs::EventSeverity::Info, "worker.spawn",
            [&](JsonWriter &w) {
                w.member("worker", static_cast<uint64_t>(i));
                w.member("of", static_cast<uint64_t>(n));
                w.member("pid",
                         static_cast<int64_t>(pids[i]));
                w.member("report", report_paths[i]);
            });
    }

    // Gather: reap every worker; {0,1} are the verdict exit codes, so
    // anything else — or a signal — is a failed shard.
    std::vector<std::string> failures;
    for (uint32_t i = 0; i < n; i++) {
        int status = 0;
        const pid_t reaped = waitpid(pids[i], &status, 0);
        int exit_code = -1;
        int signal_no = 0;
        bool ok = false;
        if (reaped == pids[i] && WIFEXITED(status)) {
            exit_code = WEXITSTATUS(status);
            ok = exit_code == 0 || exit_code == 1;
        } else if (reaped == pids[i] && WIFSIGNALED(status)) {
            signal_no = WTERMSIG(status);
        }
        services.eventLog().emit(
            ok ? obs::EventSeverity::Info
               : obs::EventSeverity::Error,
            "worker.exit", [&](JsonWriter &w) {
                w.member("worker", static_cast<uint64_t>(i));
                w.member("of", static_cast<uint64_t>(n));
                w.member("pid", static_cast<int64_t>(pids[i]));
                w.member("ok", ok);
                w.member("exit_code", exit_code);
                w.member("signal", signal_no);
            });
        if (!ok) {
            obs::count(obs::Counter::WorkersFailed);
            std::string what =
                "worker " + std::to_string(i) + "/" +
                std::to_string(n) + " (pid " +
                std::to_string(pids[i]) + ") ";
            what += signal_no != 0
                        ? "killed by signal " +
                              std::to_string(signal_no)
                        : "exited with status " +
                              std::to_string(exit_code);
            failures.push_back(std::move(what));
        }
    }
    if (!failures.empty()) {
        for (const auto &what : failures)
            std::fprintf(stderr, "distributed check failed: %s\n",
                         what.c_str());
        services.emitRunStop(2);
        cleanup();
        services.stop();
        return 2;
    }

    std::vector<WorkerReport> parts(n);
    for (uint32_t i = 0; i < n; i++) {
        std::string error;
        if (!loadReportFile(report_paths[i], &parts[i].report,
                            &parts[i].meta, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            services.emitRunStop(2);
            cleanup();
            services.stop();
            return 2;
        }
    }
    Report merged;
    ReportMeta totals;
    mergeReports(std::move(parts), &merged, &totals);
    if (keep_reports) {
        std::string error;
        if (!saveReportFile(plan.reportOutPath, merged, totals,
                            &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            services.emitRunStop(2);
            services.stop();
            return 2;
        }
    }
    cleanup();

    const size_t traces =
        static_cast<size_t>(totals.traceCount);
    const size_t ops = static_cast<size_t>(totals.totalOps);
    printReportStdout(plan, traces, ops, workers, merged);
    if (!plan.metricsJsonPath.empty()) {
        if (!writeMetricsDoc(plan, traces, ops, workers,
                             plan.inputs.size(), merged,
                             PoolStats{})) {
            services.emitRunStop(2);
            services.stop();
            return 2;
        }
    }

    const int exit_code = merged.failCount() == 0 ? 0 : 1;
    emitFindingEvents(services.eventLog(), merged);
    services.emitRunStop(exit_code, [&](JsonWriter &w) {
        w.member("traces", traces);
        w.member("ops", ops);
        w.member("fail", merged.failCount());
        w.member("warn", merged.warnCount());
    });
    services.stop();
    return exit_code;
}

int
runCheckTool(const CheckPlan &plan)
{
    if (plan.distribute > 0)
        return runDistributedCheck(plan);
    CheckSession session(plan);
    return session.run();
}

} // namespace pmtest::core
