#include "core/report_io.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>

#include "trace/trace_io.hh"

namespace pmtest::core
{

namespace
{

constexpr size_t kMetaBytes = 4 + 4 + 8 + 8 + 8 + 4 + 4;
constexpr size_t kFindingBytes = 4 + 16 + 16 + 40 + 4 + 4;

constexpr uint8_t kHintWithFlush = 1u << 0;
constexpr uint8_t kHintVerified = 1u << 1;

constexpr uint8_t kMaxSeverity =
    static_cast<uint8_t>(Severity::Fail);
constexpr uint8_t kMaxFindingKind =
    static_cast<uint8_t>(FindingKind::Malformed);
constexpr uint8_t kMaxFixAction =
    static_cast<uint8_t>(FixAction::DeleteTxAdd);
constexpr uint8_t kMaxOpType = static_cast<uint8_t>(OpType::Include);
constexpr uint32_t kMaxModel = static_cast<uint32_t>(ModelKind::Arm);

void
putU8(std::string *out, uint8_t v)
{
    out->push_back(static_cast<char>(v));
}

void
putU16(std::string *out, uint16_t v)
{
    for (int i = 0; i < 2; i++)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU32(std::string *out, uint32_t v)
{
    for (int i = 0; i < 4; i++)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string *out, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** Bounds-checked little-endian reader over the report body. */
struct Reader
{
    const uint8_t *data;
    size_t len;
    size_t pos = 0;

    size_t remaining() const { return len - pos; }

    bool
    u8(uint8_t *v)
    {
        if (remaining() < 1)
            return false;
        *v = data[pos++];
        return true;
    }

    bool
    u16(uint16_t *v)
    {
        if (remaining() < 2)
            return false;
        *v = 0;
        for (int i = 0; i < 2; i++)
            *v |= static_cast<uint16_t>(data[pos + i]) << (8 * i);
        pos += 2;
        return true;
    }

    bool
    u32(uint32_t *v)
    {
        if (remaining() < 4)
            return false;
        *v = 0;
        for (int i = 0; i < 4; i++)
            *v |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
        pos += 4;
        return true;
    }

    bool
    u64(uint64_t *v)
    {
        if (remaining() < 8)
            return false;
        *v = 0;
        for (int i = 0; i < 8; i++)
            *v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return true;
    }
};

/** Interns strings, assigning dense table indices in first-use order. */
struct StringTable
{
    std::vector<std::string_view> entries;
    std::unordered_map<std::string_view, uint32_t> index;

    uint32_t
    intern(std::string_view s)
    {
        const auto [it, inserted] =
            index.try_emplace(s, static_cast<uint32_t>(entries.size()));
        if (inserted)
            entries.push_back(s);
        return it->second;
    }
};

bool
failDecode(std::string *error, const char *reason)
{
    if (error)
        *error = reason;
    return false;
}

} // namespace

void
encodeReport(const Report &report, const ReportMeta &meta,
             std::string *out)
{
    // Intern every message and source-file name up front so the
    // string table precedes the findings in the body.
    StringTable table;
    std::vector<uint32_t> msg_idx, file_idx;
    msg_idx.reserve(report.findings().size());
    file_idx.reserve(report.findings().size());
    for (const Finding &f : report.findings()) {
        msg_idx.push_back(f.message.empty()
                              ? ReportWire::kNoString
                              : table.intern(f.message));
        const bool has_file = f.loc.file && f.loc.file[0] != '\0';
        file_idx.push_back(has_file ? table.intern(f.loc.file)
                                    : ReportWire::kNoString);
    }

    std::string body;
    putU32(&body, meta.workerIndex);
    putU32(&body, meta.workerCount);
    putU64(&body, meta.traceCount);
    putU64(&body, meta.totalOps);
    putU64(&body, meta.sourceCount);
    putU32(&body, static_cast<uint32_t>(meta.model));
    putU32(&body, 0); // reserved

    putU32(&body, static_cast<uint32_t>(table.entries.size()));
    for (const std::string_view s : table.entries) {
        putU32(&body, static_cast<uint32_t>(s.size()));
        body.append(s.data(), s.size());
    }

    putU64(&body, report.findings().size());
    for (size_t i = 0; i < report.findings().size(); i++) {
        const Finding &f = report.findings()[i];
        putU8(&body, static_cast<uint8_t>(f.severity));
        putU8(&body, static_cast<uint8_t>(f.kind));
        putU8(&body, static_cast<uint8_t>(f.hint.action));
        putU8(&body, (f.hint.withFlush ? kHintWithFlush : 0) |
                         (f.hint.verified ? kHintVerified : 0));
        putU32(&body, msg_idx[i]);
        putU32(&body, file_idx[i]);
        putU32(&body, f.loc.line);
        putU32(&body, f.fileId);
        putU64(&body, f.traceId);
        putU64(&body, f.opIndex);
        putU64(&body, f.hint.addr);
        putU64(&body, f.hint.size);
        putU64(&body, f.hint.addrB);
        putU64(&body, f.hint.sizeB);
        putU64(&body, f.hint.opIndex);
        putU8(&body, static_cast<uint8_t>(f.hint.flushOp));
        putU8(&body, static_cast<uint8_t>(f.hint.fenceOp));
        putU16(&body, 0); // reserved
        putU32(&body, f.hint.count);
    }

    putU64(out, ReportWire::kMagic);
    putU32(out, ReportWire::kVersion);
    putU32(out, 0); // reserved
    putU64(out, body.size());
    out->append(body);
    putU32(out, crc32(body.data(), body.size()));
    putU64(out, ReportWire::kFooterMagic);
}

bool
decodeReport(const void *data, size_t len, Report *report,
             ReportMeta *meta, std::string *error)
{
    Reader r{static_cast<const uint8_t *>(data), len};
    if (len < ReportWire::kHeaderBytes + ReportWire::kFooterBytes)
        return failDecode(error, "report truncated (header)");

    uint64_t magic = 0, body_len = 0;
    uint32_t version = 0, reserved = 0;
    r.u64(&magic);
    r.u32(&version);
    r.u32(&reserved);
    r.u64(&body_len);
    if (magic != ReportWire::kMagic)
        return failDecode(error, "not a pmtest report (bad magic)");
    if (version != ReportWire::kVersion)
        return failDecode(error, "unsupported report version");
    // The header sits outside the body CRC; within v1 the reserved
    // word must be zero so corruption there cannot pass unnoticed.
    if (reserved != 0)
        return failDecode(error, "bad report header");
    // Exact accounting: the body must fill everything between the
    // header and the footer — no truncation, no trailing junk.
    if (body_len !=
        len - ReportWire::kHeaderBytes - ReportWire::kFooterBytes)
        return failDecode(error, "report length mismatch");

    const uint8_t *body = r.data + r.pos;
    Reader footer{r.data, len, ReportWire::kHeaderBytes + body_len};
    uint32_t stored_crc = 0;
    uint64_t footer_magic = 0;
    footer.u32(&stored_crc);
    footer.u64(&footer_magic);
    if (footer_magic != ReportWire::kFooterMagic)
        return failDecode(error, "bad report footer");
    if (stored_crc != crc32(body, body_len))
        return failDecode(error, "report CRC mismatch");

    Reader b{body, static_cast<size_t>(body_len)};
    ReportMeta parsed_meta;
    uint32_t model = 0, meta_reserved = 0;
    if (!b.u32(&parsed_meta.workerIndex) ||
        !b.u32(&parsed_meta.workerCount) ||
        !b.u64(&parsed_meta.traceCount) ||
        !b.u64(&parsed_meta.totalOps) ||
        !b.u64(&parsed_meta.sourceCount) || !b.u32(&model) ||
        !b.u32(&meta_reserved))
        return failDecode(error, "report truncated (meta)");
    if (model > kMaxModel)
        return failDecode(error, "bad model in report");
    parsed_meta.model = static_cast<ModelKind>(model);

    uint32_t string_count = 0;
    if (!b.u32(&string_count))
        return failDecode(error, "report truncated (string table)");
    // Each entry carries at least its length field; reject counts the
    // remaining bytes cannot possibly hold before allocating.
    if (string_count > b.remaining() / 4)
        return failDecode(error, "bad string count in report");
    auto arena = std::make_shared<std::deque<std::string>>();
    for (uint32_t i = 0; i < string_count; i++) {
        uint32_t slen = 0;
        if (!b.u32(&slen) || slen > b.remaining())
            return failDecode(error,
                              "report truncated (string table)");
        arena->emplace_back(
            reinterpret_cast<const char *>(b.data + b.pos), slen);
        b.pos += slen;
    }

    uint64_t finding_count = 0;
    if (!b.u64(&finding_count))
        return failDecode(error, "report truncated (findings)");
    if (finding_count > b.remaining() / kFindingBytes)
        return failDecode(error, "bad finding count in report");

    Report parsed;
    for (uint64_t i = 0; i < finding_count; i++) {
        uint8_t severity = 0, kind = 0, action = 0, flags = 0;
        uint32_t msg_idx = 0, file_name_idx = 0, line = 0,
                 file_id = 0;
        uint64_t trace_id = 0, op_index = 0, hint_op_index = 0;
        uint8_t flush_op = 0, fence_op = 0;
        uint16_t finding_reserved = 0;
        Finding f;
        if (!b.u8(&severity) || !b.u8(&kind) || !b.u8(&action) ||
            !b.u8(&flags) || !b.u32(&msg_idx) ||
            !b.u32(&file_name_idx) || !b.u32(&line) ||
            !b.u32(&file_id) || !b.u64(&trace_id) ||
            !b.u64(&op_index) || !b.u64(&f.hint.addr) ||
            !b.u64(&f.hint.size) || !b.u64(&f.hint.addrB) ||
            !b.u64(&f.hint.sizeB) || !b.u64(&hint_op_index) ||
            !b.u8(&flush_op) || !b.u8(&fence_op) ||
            !b.u16(&finding_reserved) || !b.u32(&f.hint.count))
            return failDecode(error, "report truncated (findings)");
        if (severity > kMaxSeverity || kind > kMaxFindingKind ||
            action > kMaxFixAction || flush_op > kMaxOpType ||
            fence_op > kMaxOpType)
            return failDecode(error, "bad enum value in report");
        if (msg_idx != ReportWire::kNoString &&
            msg_idx >= arena->size())
            return failDecode(error, "bad string index in report");
        if (file_name_idx != ReportWire::kNoString &&
            file_name_idx >= arena->size())
            return failDecode(error, "bad string index in report");
        f.severity = static_cast<Severity>(severity);
        f.kind = static_cast<FindingKind>(kind);
        f.hint.action = static_cast<FixAction>(action);
        f.hint.withFlush = (flags & kHintWithFlush) != 0;
        f.hint.verified = (flags & kHintVerified) != 0;
        if (msg_idx != ReportWire::kNoString)
            f.message = (*arena)[msg_idx];
        f.loc.file = file_name_idx == ReportWire::kNoString
                         ? ""
                         : (*arena)[file_name_idx].c_str();
        f.loc.line = line;
        f.fileId = file_id;
        f.traceId = trace_id;
        f.opIndex = op_index;
        f.hint.opIndex = hint_op_index;
        f.hint.flushOp = static_cast<OpType>(flush_op);
        f.hint.fenceOp = static_cast<OpType>(fence_op);
        parsed.add(std::move(f));
    }
    if (b.remaining() != 0)
        return failDecode(error, "trailing bytes in report body");

    // Full success: publish. Findings' loc.file pointers reference
    // the deque arena, which the report co-owns from here on.
    parsed.holdArena(std::move(arena));
    *report = std::move(parsed);
    if (meta)
        *meta = parsed_meta;
    return true;
}

bool
saveReportFile(const std::string &path, const Report &report,
               const ReportMeta &meta, std::string *error)
{
    std::string bytes;
    encodeReport(report, meta, &bytes);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        if (error)
            *error = "cannot write " + path;
        return false;
    }
    const bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    const bool closed = std::fclose(f) == 0;
    if ((!ok || !closed) && error)
        *error = "cannot write " + path;
    return ok && closed;
}

bool
loadReportFile(const std::string &path, Report *report,
               ReportMeta *meta, std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (error)
            *error = path + ": cannot open";
        return false;
    }
    std::string bytes;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.append(buf, n);
    const bool read_ok = !std::ferror(f);
    std::fclose(f);
    if (!read_ok) {
        if (error)
            *error = path + ": read error";
        return false;
    }
    std::string reason;
    if (!decodeReport(bytes.data(), bytes.size(), report, meta,
                      &reason)) {
        if (error)
            *error = path + ": " + reason;
        return false;
    }
    return true;
}

void
mergeReports(std::vector<WorkerReport> parts, Report *merged,
             ReportMeta *meta)
{
    std::stable_sort(parts.begin(), parts.end(),
                     [](const WorkerReport &a, const WorkerReport &b) {
                         return a.meta.workerIndex <
                                b.meta.workerIndex;
                     });
    Report out;
    ReportMeta totals;
    totals.workerCount = static_cast<uint32_t>(parts.size());
    for (WorkerReport &part : parts) {
        out.merge(part.report);
        totals.traceCount += part.meta.traceCount;
        totals.totalOps += part.meta.totalOps;
        totals.sourceCount += part.meta.sourceCount;
        totals.model = part.meta.model;
    }
    out.canonicalize();
    *merged = std::move(out);
    if (meta)
        *meta = totals;
}

} // namespace pmtest::core
