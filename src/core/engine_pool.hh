/**
 * @file
 * The multithreaded checking mechanism (paper §4.4, Fig. 8): traces
 * sealed by the program under test are dispatched to a pool of worker
 * threads, each running its own Engine; results flow back to a shared
 * result collector. PMTest_GET_RESULT() maps to drain(). A
 * zero-worker pool checks traces inline on the caller — the
 * configuration used by the decoupling ablation.
 *
 * Dispatch architecture:
 *  - Each worker owns a FIFO trace queue. Submission places traces
 *    round-robin, but an idle worker *steals* from the most-loaded
 *    peer — half the victim's backlog per scan (one runs immediately,
 *    the rest requeue on the thief and stay stealable), so one giant
 *    trace no longer serializes a whole queue of small traces behind
 *    it and deep backlogs rebalance in O(log) scans instead of one
 *    scan per trace.
 *  - Queues are bounded: explicitly (PoolOptions::queueCapacity), via
 *    the PMTEST_QUEUE_CAP environment variable, or by a default
 *    derived from the worker count (a fixed total backlog divided
 *    across queues). A full queue blocks the producer — bounded
 *    backpressure instead of unbounded memory growth when the
 *    program outruns its checkers.
 *  - submitBatch() enqueues many small traces under one queue lock
 *    acquisition, amortizing dispatch overhead (the paper's §4.2
 *    "divide the program into sections for better testing speed").
 *  - stats() snapshots queue depths, steal counts, producer stall
 *    time and per-worker throughput, so the Fig. 10/11 harnesses can
 *    report *why* a configuration is fast.
 */

#ifndef PMTEST_CORE_ENGINE_POOL_HH
#define PMTEST_CORE_ENGINE_POOL_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "trace/concurrent_queue.hh"

namespace pmtest::core
{

/** EnginePool construction parameters. */
struct PoolOptions
{
    /** Persistency model all engines use. */
    ModelKind model = ModelKind::X86;
    /** Number of worker threads; 0 = inline checking. */
    size_t workers = 1;
    /** queueCapacity value requesting an explicitly unbounded queue. */
    static constexpr size_t kUnboundedQueue = ~size_t{0};
    /**
     * Per-worker queue capacity in traces. 0 = automatic: the
     * PMTEST_QUEUE_CAP environment variable if set (a value of 0
     * there means unbounded), else a default derived from the worker
     * count — a fixed total backlog divided across the queues, so
     * adding workers does not grow the in-flight trace count.
     * kUnboundedQueue requests no bound at all.
     */
    size_t queueCapacity = 0;
    /**
     * Allow idle workers to steal queued traces from loaded peers.
     * Disabled reproduces the original pinned round-robin dispatch
     * (kept for the dispatch ablation).
     */
    bool workStealing = true;
};

/** Point-in-time dispatch statistics for one worker. */
struct WorkerStats
{
    uint64_t tracesChecked = 0; ///< traces this worker completed
    uint64_t opsProcessed = 0;  ///< PM ops this worker processed
    uint64_t steals = 0;        ///< traces this worker stole from peers
    uint64_t stealScans = 0;    ///< successful steal sweeps (each
                                ///< grabs up to half a victim queue)
    size_t queueDepth = 0;      ///< traces currently queued to it
};

/**
 * Counters for the ingest stage feeding a pool (the offline
 * pmtest_check pipeline): filled by core::ingest() and carried
 * here so one PoolStats snapshot describes the whole load→verdict
 * pipeline — how the bytes came in, how long decoding took, and how
 * long decoders stalled on the pool's backpressure.
 */
struct IngestStats
{
    bool active = false;      ///< an ingest stage ran (renders stats)
    bool mmapBacked = false;  ///< all bytes were mmap'd (vs buffers)
    uint32_t decoders = 0;    ///< decoder threads used
    size_t sources = 1;       ///< leaf sources (files/shards) drained
    uint64_t bytesMapped = 0; ///< file bytes mapped/buffered
    uint64_t tracesDecoded = 0;
    uint64_t decodeNanos = 0; ///< summed decode time across decoders
    uint64_t stallNanos = 0;  ///< summed time decoders were blocked
                              ///< submitting into full pool queues
};

/** Point-in-time snapshot of the pool's dispatch behaviour. */
struct PoolStats
{
    std::vector<WorkerStats> workers;
    IngestStats ingest;             ///< offline file-ingest counters
    uint64_t tracesSubmitted = 0;   ///< traces accepted by submit*()
    uint64_t tracesCompleted = 0;   ///< traces fully checked
    uint64_t batchesSubmitted = 0;  ///< submitBatch() calls
    uint64_t steals = 0;            ///< total stolen traces
    uint64_t stealScans = 0;        ///< total successful steal sweeps
    uint64_t producerStallNanos = 0;///< time producers blocked on
                                    ///< full queues (backpressure)
    size_t queueCapacity = 0;       ///< per-worker bound (0 = none)
    bool workStealing = true;       ///< stealing enabled

    /** Sum of current queue depths. */
    size_t queuedTraces() const;

    /** Multi-line human-readable rendering. */
    std::string str() const;
};

/** Dispatches traces to engine workers and aggregates reports. */
class EnginePool
{
  public:
    explicit EnginePool(const PoolOptions &options);

    /**
     * Convenience constructor kept source-compatible with the
     * original round-robin pool.
     * @param kind persistency model all engines use
     * @param workers number of worker threads; 0 = inline checking
     */
    EnginePool(ModelKind kind, size_t workers);

    /** Stops workers; pending traces are drained first. */
    ~EnginePool();

    EnginePool(const EnginePool &) = delete;
    EnginePool &operator=(const EnginePool &) = delete;

    /**
     * Submit one trace for checking (PMTest_SEND_TRACE). Blocks when
     * the target queue is full (bounded mode); checks inline when the
     * pool has no workers.
     */
    void submit(Trace trace);

    /**
     * Submit a batch of traces as one dispatch unit: one queue lock
     * acquisition, one worker wakeup. The traces remain individually
     * stealable once queued.
     */
    void submitBatch(std::vector<Trace> traces);

    /**
     * Submit a batch directly to worker slot @p slot % workerCount()
     * — the pinned-placement variant used by the core-aware ingest:
     * a shard's traces keep landing on one engine whose TraceState
     * (shadow maps, chunk hints) stays warm for that shard's address
     * pattern. Unlike submitBatch there is no spill to other queues:
     * a full target queue blocks (accounted as producer stall), since
     * spilling would defeat the placement. Work stealing may still
     * rebalance a deep backlog; placement is warm-affinity
     * best-effort, never a correctness property (reports
     * canonicalize). Inline pools check on the caller as usual.
     */
    void submitBatchTo(size_t slot, std::vector<Trace> traces);

    /**
     * Block until every submitted trace has been checked
     * (PMTest_GET_RESULT).
     */
    void drain();

    /**
     * Merged findings of all traces checked so far. Implies drain();
     * the wait and the snapshot happen in one critical section, so
     * the returned report is exactly the drained state even when
     * other threads keep submitting.
     */
    Report results();

    /** Drop accumulated findings (between test phases). */
    void clearResults();

    /**
     * Atomically drain, snapshot and reset: the returned report
     * contains every finding not returned by a previous take, and
     * concurrent submitters cannot slip findings into the gap (they
     * are either in this snapshot or in the next one).
     */
    Report takeResults();

    /** Dispatch statistics snapshot. */
    PoolStats stats() const;

    /** Number of worker threads (0 = inline mode). */
    size_t workerCount() const { return workers_.size(); }

    /** Per-worker queue capacity (0 = unbounded). */
    size_t queueCapacity() const { return queueCapacity_; }

    /** Total traces checked so far. */
    uint64_t tracesChecked() const;

    /** Total PM operations processed so far. */
    uint64_t opsProcessed() const;

  private:
    struct Worker
    {
        explicit Worker(size_t queue_capacity) : queue(queue_capacity) {}

        std::unique_ptr<Engine> engine;
        ConcurrentQueue<Trace> queue;
        std::thread thread;
        std::atomic<uint64_t> opsProcessed{0};
        std::atomic<uint64_t> tracesChecked{0};
        std::atomic<uint64_t> steals{0};
        std::atomic<uint64_t> stealScans{0};
    };

    void workerLoop(Worker &worker);
    /**
     * Steal up to half the most-loaded peer's queue into @p out.
     * @return the number of traces stolen (0 when no peer has work).
     */
    size_t stealFrom(const Worker &thief, std::vector<Trace> &out);
    /** Process one trace on @p worker and record its report. */
    void checkOn(Worker &worker, Trace trace);
    void recordResult(Report report);
    /** Wake workers after @p items new traces were queued. */
    void notifyWork(size_t items = 1);
    /** True when any queue holds work (racy; wakeup predicate). */
    bool anyQueued() const;
    void checkInline(Trace trace);

    ModelKind kind_;
    size_t queueCapacity_ = 0;
    bool stealing_ = true;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::unique_ptr<Engine> inlineEngine_; ///< used when workers_ empty
    std::atomic<size_t> nextWorker_{0};    ///< round-robin cursor
    mutable std::mutex inlineMutex_;       ///< guards inline engine

    std::mutex workMutex_; ///< wakeup coordination for idle workers
    std::condition_variable workCv_;
    bool stopping_ = false; ///< guarded by workMutex_

    std::atomic<uint64_t> batches_{0};
    std::atomic<uint64_t> stallNanos_{0};

    mutable std::mutex resultMutex_;
    std::condition_variable drainCv_;
    Report aggregate_;
    uint64_t submitted_ = 0; ///< guarded by resultMutex_
    uint64_t completed_ = 0; ///< guarded by resultMutex_
};

} // namespace pmtest::core

#endif // PMTEST_CORE_ENGINE_POOL_HH
