/**
 * @file
 * The multithreaded checking mechanism (paper §4.4, Fig. 8): traces
 * sealed by the program under test are dispatched round-robin to a
 * pool of worker threads, each running its own Engine; results flow
 * back to a shared result collector. PMTest_GET_RESULT() maps to
 * drain(). A zero-worker pool checks traces inline on the caller —
 * the configuration used by the decoupling ablation.
 */

#ifndef PMTEST_CORE_ENGINE_POOL_HH
#define PMTEST_CORE_ENGINE_POOL_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "trace/concurrent_queue.hh"

namespace pmtest::core
{

/** Dispatches traces to engine workers and aggregates reports. */
class EnginePool
{
  public:
    /**
     * @param kind persistency model all engines use
     * @param workers number of worker threads; 0 = inline checking
     */
    EnginePool(ModelKind kind, size_t workers);

    /** Stops workers; pending traces are drained first. */
    ~EnginePool();

    EnginePool(const EnginePool &) = delete;
    EnginePool &operator=(const EnginePool &) = delete;

    /**
     * Submit one trace for checking (PMTest_SEND_TRACE). Round-robin
     * across workers; checks inline when the pool has no workers.
     */
    void submit(Trace trace);

    /**
     * Block until every submitted trace has been checked
     * (PMTest_GET_RESULT).
     */
    void drain();

    /**
     * Merged findings of all traces checked so far. Implies drain().
     */
    Report results();

    /** Drop accumulated findings (between test phases). */
    void clearResults();

    /** Number of worker threads (0 = inline mode). */
    size_t workerCount() const { return workers_.size(); }

    /** Total traces checked so far. */
    uint64_t tracesChecked() const;

    /** Total PM operations processed so far. */
    uint64_t opsProcessed() const;

  private:
    struct Worker
    {
        std::unique_ptr<Engine> engine;
        ConcurrentQueue<Trace> queue;
        std::thread thread;
        std::atomic<uint64_t> opsProcessed{0};
        std::atomic<uint64_t> tracesChecked{0};
    };

    void workerLoop(Worker &worker);
    void recordResult(Report report);

    ModelKind kind_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::unique_ptr<Engine> inlineEngine_; ///< used when workers_ empty
    size_t nextWorker_ = 0;
    std::mutex submitMutex_; ///< guards nextWorker_ and inline engine

    std::mutex resultMutex_;
    std::condition_variable drainCv_;
    Report aggregate_;
    uint64_t submitted_ = 0; ///< guarded by resultMutex_
    uint64_t completed_ = 0; ///< guarded by resultMutex_
};

} // namespace pmtest::core

#endif // PMTEST_CORE_ENGINE_POOL_HH
