#include "core/engine_pool.hh"

#include <cstdlib>
#include <sstream>

#include "obs/telemetry.hh"
#include "util/clock.hh"

namespace pmtest::core
{

namespace
{

/**
 * Resolve the per-worker queue bound: explicit option, else the
 * PMTEST_QUEUE_CAP environment variable, else a default derived from
 * the worker count. The default bounds the *total* backlog (and so
 * the memory a stalled checker pipeline can pin) at a fixed number of
 * traces split across the queues — more workers means shallower
 * queues, not more queued traces.
 */
size_t
resolveQueueCapacity(size_t requested, size_t workers)
{
    if (workers == 0)
        return 0; // inline mode has no queues
    if (requested == PoolOptions::kUnboundedQueue)
        return 0;
    if (requested != 0)
        return requested;
    if (const char *env = std::getenv("PMTEST_QUEUE_CAP")) {
        const long long parsed = std::atoll(env);
        return parsed > 0 ? static_cast<size_t>(parsed) : 0;
    }
    constexpr size_t target_backlog = 1024; ///< total queued traces
    constexpr size_t min_per_worker = 16;
    return std::max(min_per_worker, target_backlog / workers);
}

} // namespace

size_t
PoolStats::queuedTraces() const
{
    size_t total = 0;
    for (const auto &w : workers)
        total += w.queueDepth;
    return total;
}

std::string
PoolStats::str() const
{
    std::ostringstream out;
    out << "pool: " << tracesSubmitted << " submitted, "
        << tracesCompleted << " completed, " << batchesSubmitted
        << " batches, " << steals << " stolen traces in " << stealScans
        << " scans, producer stalled "
        << static_cast<double>(producerStallNanos) * 1e-6 << " ms"
        << " (capacity "
        << (queueCapacity ? std::to_string(queueCapacity) : "unbounded")
        << ", stealing " << (workStealing ? "on" : "off") << ")\n";
    if (ingest.active) {
        out << "ingest: " << ingest.bytesMapped << " bytes "
            << (ingest.mmapBacked ? "mmapped" : "buffered")
            << " from " << ingest.sources << " source(s), "
            << ingest.tracesDecoded << " traces decoded on "
            << ingest.decoders << " decoder(s), decode "
            << static_cast<double>(ingest.decodeNanos) * 1e-6
            << " ms, ingest stalled "
            << static_cast<double>(ingest.stallNanos) * 1e-6
            << " ms\n";
    }
    for (size_t i = 0; i < workers.size(); i++) {
        const WorkerStats &w = workers[i];
        out << "  worker " << i << ": " << w.tracesChecked
            << " traces, " << w.opsProcessed << " ops, " << w.steals
            << " stolen (" << w.stealScans << " scans), depth "
            << w.queueDepth << "\n";
    }
    return out.str();
}

EnginePool::EnginePool(const PoolOptions &options)
    : kind_(options.model),
      queueCapacity_(
          resolveQueueCapacity(options.queueCapacity, options.workers)),
      stealing_(options.workStealing)
{
    if (options.workers == 0) {
        inlineEngine_ = std::make_unique<Engine>(kind_);
        return;
    }
    workers_.reserve(options.workers);
    for (size_t i = 0; i < options.workers; i++) {
        auto w = std::make_unique<Worker>(queueCapacity_);
        w->engine = std::make_unique<Engine>(kind_);
        workers_.push_back(std::move(w));
    }
    for (size_t i = 0; i < workers_.size(); i++) {
        Worker *raw = workers_[i].get();
        raw->thread = std::thread([this, raw, i] {
            obs::nameThread("pool-worker-" + std::to_string(i));
            workerLoop(*raw);
        });
    }
}

EnginePool::EnginePool(ModelKind kind, size_t workers)
    : EnginePool(PoolOptions{kind, workers})
{
}

EnginePool::~EnginePool()
{
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        stopping_ = true;
    }
    // Closing the queues releases any producer still blocked on a
    // full queue (no new submissions may race destruction, as before).
    for (auto &w : workers_)
        w->queue.close();
    workCv_.notify_all();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

bool
EnginePool::anyQueued() const
{
    for (const auto &w : workers_) {
        if (!w->queue.empty())
            return true;
    }
    return false;
}

void
EnginePool::notifyWork(size_t items)
{
    // Taking the mutex (even empty) orders this wakeup against a
    // worker that just scanned the queues empty and is about to wait:
    // either it sees the new item during its predicate check, or it
    // is already waiting and receives the notify.
    { std::lock_guard<std::mutex> lock(workMutex_); }
    // With stealing, any worker can serve any queue, so one new trace
    // needs exactly one wakeup; waking the whole pool per submit is a
    // thundering herd on the producer's critical path. Without
    // stealing only the owning worker's predicate passes, so everyone
    // must be woken to guarantee the owner is.
    if (stealing_ && items == 1)
        workCv_.notify_one();
    else
        workCv_.notify_all();
}

size_t
EnginePool::stealFrom(const Worker &thief, std::vector<Trace> &out)
{
    Worker *victim = nullptr;
    size_t deepest = 0;
    for (const auto &w : workers_) {
        if (w.get() == &thief)
            continue;
        const size_t depth = w->queue.size();
        if (depth > deepest) {
            deepest = depth;
            victim = w.get();
        }
    }
    if (!victim)
        return 0;
    return victim->queue.tryPopHalf(out);
}

void
EnginePool::workerLoop(Worker &worker)
{
    // Reused steal buffer: one victim scan grabs up to half the
    // deepest peer queue instead of a single trace per scan.
    std::vector<Trace> stolen;
    for (;;) {
        std::optional<Trace> trace = worker.queue.tryPop();
        if (!trace && stealing_) {
            stolen.clear();
            obs::SpanScope scan_span(obs::Stage::StealScan);
            if (const size_t got = stealFrom(worker, stolen)) {
                worker.steals.fetch_add(got,
                                        std::memory_order_relaxed);
                worker.stealScans.fetch_add(
                    1, std::memory_order_relaxed);
                obs::count(obs::Counter::StealScans);
                obs::count(obs::Counter::TracesStolen, got);
                // The first stolen trace runs now; the rest requeue
                // on the thief, where they stay stealable by other
                // idle workers.
                trace = std::move(stolen.front());
                size_t requeued = 0;
                for (size_t i = 1; i < stolen.size(); i++) {
                    if (worker.queue.tryPush(stolen[i])) {
                        requeued++;
                        continue;
                    }
                    // Own queue full (tiny capacity): check directly
                    // rather than blocking a worker on a push.
                    checkOn(worker, std::move(stolen[i]));
                }
                if (requeued)
                    notifyWork(requeued);
            }
        }
        if (trace) {
            checkOn(worker, std::move(*trace));
            continue;
        }
        std::unique_lock<std::mutex> lock(workMutex_);
        workCv_.wait(lock, [&] {
            return stopping_ ||
                   (stealing_ ? anyQueued() : !worker.queue.empty());
        });
        if (stopping_ &&
            (stealing_ ? !anyQueued() : worker.queue.empty())) {
            return; // all pending work drained
        }
    }
}

void
EnginePool::checkOn(Worker &worker, Trace trace)
{
    Report report = worker.engine->check(trace);
    worker.opsProcessed.store(worker.engine->opsProcessed(),
                              std::memory_order_relaxed);
    worker.tracesChecked.store(worker.engine->tracesChecked(),
                               std::memory_order_relaxed);
    recordResult(std::move(report));
}

void
EnginePool::recordResult(Report report)
{
    obs::count(obs::Counter::ReportsMerged);
    bool drained;
    {
        std::lock_guard<std::mutex> lock(resultMutex_);
        obs::SpanScope span(obs::Stage::ReportMerge);
        aggregate_.merge(report);
        completed_++;
        // The drain predicate can only turn true at the moment the
        // counters meet; notifying on every completion wakes blocked
        // drainers thousands of times for nothing.
        drained = completed_ == submitted_;
    }
    if (drained)
        drainCv_.notify_all();
}

void
EnginePool::checkInline(Trace trace)
{
    Report report;
    {
        std::lock_guard<std::mutex> lock(inlineMutex_);
        report = inlineEngine_->check(trace);
    }
    recordResult(std::move(report));
}

void
EnginePool::submit(Trace trace)
{
    obs::count(obs::Counter::TracesSubmitted);
    {
        std::lock_guard<std::mutex> lock(resultMutex_);
        submitted_++;
    }

    if (workers_.empty()) {
        // Inline (coupled) mode: check on the calling thread.
        checkInline(std::move(trace));
        return;
    }

    const size_t start =
        nextWorker_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size();
    if (workers_[start]->queue.tryPush(trace)) {
        notifyWork();
        return;
    }
    // Round-robin target full: try the other queues before stalling.
    for (size_t i = 1; i < workers_.size(); i++) {
        Worker &w = *workers_[(start + i) % workers_.size()];
        if (w.queue.tryPush(trace)) {
            notifyWork();
            return;
        }
    }
    // Every queue full: backpressure. Block on the original target
    // and account the stall (its owner is necessarily awake, so the
    // push is eventually released by a pop).
    obs::SpanScope stall_span(obs::Stage::PoolStall);
    obs::count(obs::Counter::SubmitStalls);
    Timer timer;
    workers_[start]->queue.push(std::move(trace));
    stallNanos_.fetch_add(timer.elapsedNs(), std::memory_order_relaxed);
    notifyWork();
}

void
EnginePool::submitBatch(std::vector<Trace> traces)
{
    if (traces.empty())
        return;
    obs::SpanScope span(obs::Stage::PoolSubmit);
    obs::count(obs::Counter::TracesSubmitted, traces.size());
    obs::count(obs::Counter::BatchesSubmitted);
    {
        std::lock_guard<std::mutex> lock(resultMutex_);
        submitted_ += traces.size();
    }
    batches_.fetch_add(1, std::memory_order_relaxed);

    if (workers_.empty()) {
        for (auto &t : traces)
            checkInline(std::move(t));
        return;
    }

    const size_t start =
        nextWorker_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size();
    Worker &target = *workers_[start];
    const size_t batch_size = traces.size();
    if (target.queue.tryPushAll(traces)) {
        notifyWork(batch_size);
        return;
    }
    // The batch does not fit at once: feed it item by item so the
    // workers can drain concurrently (each push is individually
    // released by pops), and account the producer stall.
    obs::SpanScope stall_span(obs::Stage::PoolStall);
    obs::count(obs::Counter::SubmitStalls);
    Timer timer;
    for (auto &t : traces) {
        if (!target.queue.tryPush(t))
            target.queue.push(std::move(t));
        notifyWork();
    }
    traces.clear();
    stallNanos_.fetch_add(timer.elapsedNs(), std::memory_order_relaxed);
}

void
EnginePool::submitBatchTo(size_t slot, std::vector<Trace> traces)
{
    if (traces.empty())
        return;
    obs::SpanScope span(obs::Stage::PoolSubmit);
    obs::count(obs::Counter::TracesSubmitted, traces.size());
    obs::count(obs::Counter::BatchesSubmitted);
    {
        std::lock_guard<std::mutex> lock(resultMutex_);
        submitted_ += traces.size();
    }
    batches_.fetch_add(1, std::memory_order_relaxed);

    if (workers_.empty()) {
        for (auto &t : traces)
            checkInline(std::move(t));
        return;
    }

    Worker &target = *workers_[slot % workers_.size()];
    const size_t batch_size = traces.size();
    if (target.queue.tryPushAll(traces)) {
        notifyWork(batch_size);
        return;
    }
    // Target full: no spill — blocking here *is* the placement
    // contract. Feed item by item so the owner (and thieves) can
    // drain concurrently, and account the producer stall.
    obs::SpanScope stall_span(obs::Stage::PoolStall);
    obs::count(obs::Counter::SubmitStalls);
    Timer timer;
    for (auto &t : traces) {
        if (!target.queue.tryPush(t))
            target.queue.push(std::move(t));
        notifyWork();
    }
    traces.clear();
    stallNanos_.fetch_add(timer.elapsedNs(), std::memory_order_relaxed);
}

void
EnginePool::drain()
{
    std::unique_lock<std::mutex> lock(resultMutex_);
    drainCv_.wait(lock, [this] { return completed_ == submitted_; });
}

Report
EnginePool::results()
{
    // Wait and snapshot under one lock: traces submitted while we
    // wait extend the wait, but nothing can complete between the
    // predicate turning true and the copy.
    std::unique_lock<std::mutex> lock(resultMutex_);
    drainCv_.wait(lock, [this] { return completed_ == submitted_; });
    return aggregate_;
}

void
EnginePool::clearResults()
{
    std::unique_lock<std::mutex> lock(resultMutex_);
    drainCv_.wait(lock, [this] { return completed_ == submitted_; });
    aggregate_ = Report();
}

Report
EnginePool::takeResults()
{
    std::unique_lock<std::mutex> lock(resultMutex_);
    drainCv_.wait(lock, [this] { return completed_ == submitted_; });
    Report out = std::move(aggregate_);
    aggregate_ = Report();
    return out;
}

PoolStats
EnginePool::stats() const
{
    PoolStats stats;
    stats.queueCapacity = queueCapacity_;
    stats.workStealing = stealing_;
    stats.batchesSubmitted = batches_.load(std::memory_order_relaxed);
    stats.producerStallNanos =
        stallNanos_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(resultMutex_);
        stats.tracesSubmitted = submitted_;
        stats.tracesCompleted = completed_;
    }
    if (workers_.empty()) {
        std::lock_guard<std::mutex> lock(inlineMutex_);
        WorkerStats w;
        w.tracesChecked = inlineEngine_->tracesChecked();
        w.opsProcessed = inlineEngine_->opsProcessed();
        stats.workers.push_back(w);
        return stats;
    }
    for (const auto &worker : workers_) {
        WorkerStats w;
        w.tracesChecked =
            worker->tracesChecked.load(std::memory_order_relaxed);
        w.opsProcessed =
            worker->opsProcessed.load(std::memory_order_relaxed);
        w.steals = worker->steals.load(std::memory_order_relaxed);
        w.stealScans =
            worker->stealScans.load(std::memory_order_relaxed);
        w.queueDepth = worker->queue.size();
        stats.steals += w.steals;
        stats.stealScans += w.stealScans;
        stats.workers.push_back(w);
    }
    return stats;
}

uint64_t
EnginePool::tracesChecked() const
{
    if (workers_.empty()) {
        std::lock_guard<std::mutex> lock(inlineMutex_);
        return inlineEngine_->tracesChecked();
    }
    uint64_t total = 0;
    for (const auto &w : workers_)
        total += w->tracesChecked.load(std::memory_order_relaxed);
    return total;
}

uint64_t
EnginePool::opsProcessed() const
{
    if (workers_.empty()) {
        std::lock_guard<std::mutex> lock(inlineMutex_);
        return inlineEngine_->opsProcessed();
    }
    uint64_t total = 0;
    for (const auto &w : workers_)
        total += w->opsProcessed.load(std::memory_order_relaxed);
    return total;
}

} // namespace pmtest::core
