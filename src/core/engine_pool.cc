#include "core/engine_pool.hh"

namespace pmtest::core
{

EnginePool::EnginePool(ModelKind kind, size_t workers) : kind_(kind)
{
    if (workers == 0) {
        inlineEngine_ = std::make_unique<Engine>(kind);
        return;
    }
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; i++) {
        auto w = std::make_unique<Worker>();
        w->engine = std::make_unique<Engine>(kind);
        workers_.push_back(std::move(w));
    }
    for (auto &w : workers_) {
        Worker *raw = w.get();
        raw->thread = std::thread([this, raw] { workerLoop(*raw); });
    }
}

EnginePool::~EnginePool()
{
    for (auto &w : workers_)
        w->queue.close();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

void
EnginePool::workerLoop(Worker &worker)
{
    while (auto trace = worker.queue.pop()) {
        Report report = worker.engine->check(*trace);
        worker.opsProcessed.store(worker.engine->opsProcessed(),
                                  std::memory_order_relaxed);
        worker.tracesChecked.store(worker.engine->tracesChecked(),
                                   std::memory_order_relaxed);
        recordResult(std::move(report));
    }
}

void
EnginePool::recordResult(Report report)
{
    {
        std::lock_guard<std::mutex> lock(resultMutex_);
        aggregate_.merge(report);
        completed_++;
    }
    drainCv_.notify_all();
}

void
EnginePool::submit(Trace trace)
{
    {
        std::lock_guard<std::mutex> lock(resultMutex_);
        submitted_++;
    }

    if (workers_.empty()) {
        // Inline (coupled) mode: check on the calling thread.
        Report report;
        {
            std::lock_guard<std::mutex> lock(submitMutex_);
            report = inlineEngine_->check(trace);
        }
        recordResult(std::move(report));
        return;
    }

    size_t target;
    {
        std::lock_guard<std::mutex> lock(submitMutex_);
        target = nextWorker_;
        nextWorker_ = (nextWorker_ + 1) % workers_.size();
    }
    workers_[target]->queue.push(std::move(trace));
}

void
EnginePool::drain()
{
    std::unique_lock<std::mutex> lock(resultMutex_);
    drainCv_.wait(lock, [this] { return completed_ == submitted_; });
}

Report
EnginePool::results()
{
    drain();
    std::lock_guard<std::mutex> lock(resultMutex_);
    return aggregate_;
}

void
EnginePool::clearResults()
{
    drain();
    std::lock_guard<std::mutex> lock(resultMutex_);
    aggregate_ = Report();
}

uint64_t
EnginePool::tracesChecked() const
{
    if (workers_.empty())
        return inlineEngine_->tracesChecked();
    uint64_t total = 0;
    for (const auto &w : workers_)
        total += w->tracesChecked.load(std::memory_order_relaxed);
    return total;
}

uint64_t
EnginePool::opsProcessed() const
{
    if (workers_.empty())
        return inlineEngine_->opsProcessed();
    uint64_t total = 0;
    for (const auto &w : workers_)
        total += w->opsProcessed.load(std::memory_order_relaxed);
    return total;
}

} // namespace pmtest::core
