#include "core/persistency_model.hh"

#include <memory>

#include "core/arm_model.hh"
#include "core/hops_model.hh"
#include "core/x86_model.hh"

namespace pmtest::core
{

bool
PersistencyModel::checkPersisted(const AddrRange &range,
                                 const ShadowMemory &shadow,
                                 std::string *why) const
{
    AddrRange open;
    if (shadow.allPersisted(range, &open))
        return true;
    if (why) {
        *why = "data in " + open.str() +
               " may not have persisted (persist interval still open "
               "at epoch " +
               std::to_string(shadow.timestamp()) + ")";
    }
    return false;
}

FixHint
PersistencyModel::durabilityHint(const AddrRange &range,
                                 const ShadowMemory &shadow,
                                 size_t op_index) const
{
    FixHint hint;
    const AddrRange span = shadow.unflushedSpan(range);
    if (span.empty()) {
        // Every pending byte has a writeback in flight: the missing
        // piece is only the completing fence.
        hint.action = FixAction::InsertFence;
    } else {
        hint.action = FixAction::InsertFlushFence;
        hint.addr = span.addr;
        hint.size = span.size;
    }
    hint.opIndex = op_index;
    hint.flushOp = repairFlushOp();
    hint.fenceOp = repairFenceOp();
    return hint;
}

FixHint
PersistencyModel::orderingHint(const AddrRange &a, const AddrRange &b,
                               const ShadowMemory &shadow,
                               size_t op_index) const
{
    (void)shadow;
    FixHint hint;
    hint.action = FixAction::InsertOrdering;
    hint.addr = a.addr;
    hint.size = a.size;
    hint.addrB = b.addr;
    hint.sizeB = b.size;
    hint.opIndex = op_index;
    hint.flushOp = repairFlushOp();
    hint.fenceOp = repairFenceOp();
    // Strict ordering requires A durable before B's write, not just
    // separated from it; the patcher materializes (or relocates) the
    // writeback of A as needed.
    hint.withFlush = true;
    return hint;
}

void
PersistencyModel::reportMalformed(const PmOp &op, Report &report,
                                  size_t op_index, const char *model_name)
{
    Finding f;
    f.severity = Severity::Fail;
    f.kind = FindingKind::Malformed;
    f.message = std::string(opTypeName(op.type)) +
                " is not defined by the " + model_name +
                " persistency model";
    f.loc = op.loc;
    f.opIndex = op_index;
    report.add(std::move(f));
}

std::unique_ptr<PersistencyModel>
makeModel(ModelKind kind)
{
    switch (kind) {
      case ModelKind::X86:
        return std::make_unique<X86Model>();
      case ModelKind::Hops:
        return std::make_unique<HopsModel>();
      case ModelKind::Arm:
        return std::make_unique<ArmModel>();
    }
    return nullptr;
}

} // namespace pmtest::core
