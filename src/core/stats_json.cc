#include "core/stats_json.hh"

namespace pmtest::core
{

void
writeIngestStatsJson(JsonWriter &w, const IngestStats &stats)
{
    w.beginObject();
    w.member("active", stats.active);
    w.member("mmap_backed", stats.mmapBacked);
    w.member("decoders", stats.decoders);
    w.member("sources", stats.sources);
    w.member("bytes_mapped", stats.bytesMapped);
    w.member("traces_decoded", stats.tracesDecoded);
    w.member("decode_ms",
             static_cast<double>(stats.decodeNanos) * 1e-6, 3);
    w.member("stall_ms",
             static_cast<double>(stats.stallNanos) * 1e-6, 3);
    w.endObject();
}

void
writePoolStatsJson(JsonWriter &w, const PoolStats &stats)
{
    w.beginObject();
    w.member("traces_submitted", stats.tracesSubmitted);
    w.member("traces_completed", stats.tracesCompleted);
    w.member("batches", stats.batchesSubmitted);
    w.member("steals", stats.steals);
    w.member("steal_scans", stats.stealScans);
    w.member("producer_stall_ms",
             static_cast<double>(stats.producerStallNanos) * 1e-6, 3);
    w.member("queue_capacity", stats.queueCapacity);
    w.member("work_stealing", stats.workStealing);
    w.member("queued_traces", stats.queuedTraces());
    if (stats.ingest.active) {
        w.key("ingest");
        writeIngestStatsJson(w, stats.ingest);
    }
    w.key("workers").beginArray();
    for (const WorkerStats &worker : stats.workers) {
        w.beginObject();
        w.member("traces", worker.tracesChecked);
        w.member("ops", worker.opsProcessed);
        w.member("steals", worker.steals);
        w.member("steal_scans", worker.stealScans);
        w.member("queue_depth", worker.queueDepth);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace pmtest::core
