/**
 * @file
 * Report serialization: the `pmtest-report-v1` wire format that lets
 * a checking session's canonical Report cross a process (or machine)
 * boundary — the missing piece between "sharded runs are
 * byte-identical in one process" and distributed scatter/gather
 * checking. A `pmtest_check --worker=i/N` process serializes its
 * shard's report with saveReportFile; the coordinator parses every
 * worker file with loadReportFile and folds them with mergeReports
 * into the exact canonical report a sequential single-process run
 * prints.
 *
 * Wire format (little-endian, versioned, CRC-checked like trace v2):
 *
 *   file   := magic u64, version u32 (=1), reserved u32,
 *             body_len u64, body[body_len], body_crc32 u32,
 *             footer_magic u64
 *   body   := meta, string_table, finding*
 *   meta   := worker_index u32, worker_count u32, trace_count u64,
 *             total_ops u64, source_count u64, model u32,
 *             reserved u32
 *   string_table := count u32, (len u32, bytes)*
 *   finding := severity u8, kind u8, hint_action u8, hint_flags u8,
 *              msg_idx u32, loc_file_idx u32, loc_line u32,
 *              file_id u32, trace_id u64, op_index u64,
 *              hint_addr u64, hint_size u64, hint_addr_b u64,
 *              hint_size_b u64, hint_op_index u64,
 *              hint_flush_op u8, hint_fence_op u8, reserved u16,
 *              hint_count u32
 *
 * Messages and source-file names are interned in the string table;
 * kNoString marks an absent entry. hint_flags packs withFlush
 * (bit 0) and verified (bit 1).
 *
 * Fail-closed parsing: decodeReport validates the magics, the exact
 * length accounting (body_len must match the input size to the
 * byte — no trailing junk), the body CRC32, every enum value and
 * every string index before anything is visible to the caller; a
 * truncated or bit-flipped file never produces a partial Report.
 * Parsed findings' location strings live in an arena the Report
 * co-owns (holdArena), so a loaded report is self-contained exactly
 * like one produced by the live pipeline.
 */

#ifndef PMTEST_CORE_REPORT_IO_HH
#define PMTEST_CORE_REPORT_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/persistency_model.hh"
#include "core/report.hh"

namespace pmtest::core
{

/** Wire-format constants shared by the writer, parser and tests. */
struct ReportWire
{
    /** Leading file magic ("PMREPORT"). */
    static constexpr uint64_t kMagic = 0x54524f5045524d50ULL;
    /** Trailing footer magic ("PMR1END."). */
    static constexpr uint64_t kFooterMagic = 0x2e444e4531524d50ULL;
    /** The only version this build writes and reads. */
    static constexpr uint32_t kVersion = 1;
    /** magic u64 + version u32 + reserved u32 + body_len u64. */
    static constexpr size_t kHeaderBytes = 24;
    /** body_crc32 u32 + footer_magic u64. */
    static constexpr size_t kFooterBytes = 12;
    /** String-table index marking an absent message/file name. */
    static constexpr uint32_t kNoString = 0xffffffffu;
};

/**
 * Run identity and source totals carried alongside the findings, so
 * the coordinator can reconstruct the sequential run's header line
 * (traces, ops, sources) without reopening any input.
 */
struct ReportMeta
{
    uint32_t workerIndex = 0;
    uint32_t workerCount = 0; ///< 0 = not a distributed worker
    uint64_t traceCount = 0;
    uint64_t totalOps = 0;
    uint64_t sourceCount = 0;
    ModelKind model = ModelKind::X86;
};

/** Serialize @p report + @p meta, appending the framed bytes to @p out. */
void encodeReport(const Report &report, const ReportMeta &meta,
                  std::string *out);

/**
 * Parse one wire report. All-or-nothing: on any validation failure
 * @p report and @p meta are left untouched, @p error (when provided)
 * describes the first violation, and false is returned.
 */
bool decodeReport(const void *data, size_t len, Report *report,
                  ReportMeta *meta, std::string *error = nullptr);

/** encodeReport to @p path. @return false with @p error set on IO failure. */
bool saveReportFile(const std::string &path, const Report &report,
                    const ReportMeta &meta,
                    std::string *error = nullptr);

/**
 * Read and decodeReport @p path (fail-closed; see decodeReport).
 * @return false with @p error set ("<path>: <reason>") on failure.
 */
bool loadReportFile(const std::string &path, Report *report,
                    ReportMeta *meta, std::string *error = nullptr);

/** One gathered worker report. */
struct WorkerReport
{
    Report report;
    ReportMeta meta;
};

/**
 * Fold gathered worker reports into one canonical report. The parts
 * are ordered by workerIndex before merging, so any gather order
 * produces byte-identical canonical output; totals (traces, ops,
 * sources) sum, and the merged meta's workerCount reports the number
 * of parts folded.
 */
void mergeReports(std::vector<WorkerReport> parts, Report *merged,
                  ReportMeta *meta);

} // namespace pmtest::core

#endif // PMTEST_CORE_REPORT_IO_HH
