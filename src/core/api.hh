/**
 * @file
 * The public PMTest interface (paper Table 2): framework lifecycle,
 * persistent-object scope control, trace communication, and the
 * checkers. Also the instrumentation primitives that crash-consistent
 * software (or an instrumented library such as txlib/mnemosyne/pmfs)
 * calls for every PM operation — the equivalent of the WHISPER macro
 * hooks / LLVM-pass injection the paper describes in §4.3.
 *
 * All functions are safe to call when the framework is not
 * initialized: the memory side effects still happen, tracking is
 * simply skipped. This lets the same binary run "native" (no tool)
 * and "under PMTest", which is how the benchmark harnesses measure
 * slowdown.
 */

#ifndef PMTEST_CORE_API_HH
#define PMTEST_CORE_API_HH

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "core/engine_pool.hh"
#include "core/report.hh"
#include "pmem/pm_pool.hh"
#include "util/source_location.hh"

namespace pmtest
{

/** Framework configuration (PMTest_INIT argument). */
struct Config
{
    /** Persistency model whose checking rules apply. */
    core::ModelKind model = core::ModelKind::X86;
    /** Engine worker threads; 0 checks traces inline (ablation). */
    size_t workers = 1;
    /**
     * Per-worker trace queue bound; a full queue blocks the producer
     * (backpressure). 0 consults PMTEST_QUEUE_CAP, else unbounded.
     */
    size_t queueCapacity = 0;
    /**
     * Seal-side batching: sealed traces accumulate per thread and are
     * submitted N at a time as one dispatch unit, amortizing queue
     * locking for workloads that seal many small traces. 1 disables.
     */
    size_t traceBatch = 1;
    /** Idle engine workers steal queued traces from loaded peers. */
    bool workStealing = true;
};

/** @{ Framework lifecycle (paper: PMTest_INIT / PMTest_EXIT). */
void pmtestInit(const Config &config = {});
void pmtestExit();
bool pmtestInitialized();
/** @} */

/** Per-thread tracking init (paper: PMTest_THREAD_INIT). */
void pmtestThreadInit();

/** @{ Enable/disable tracking (paper: PMTest_START / PMTest_END). */
void pmtestStart();
void pmtestEnd();
bool pmtestTracking();
/** @} */

/** @{ Persistent-object scope control. */
void pmtestExclude(const void *addr, size_t size);
void pmtestInclude(const void *addr, size_t size);
/** @} */

/** @{ Named-variable registry (REG_VAR / UNREG_VAR / GET_VAR). */
void pmtestRegVar(const std::string &name, const void *addr, size_t size);
void pmtestUnregVar(const std::string &name);
bool pmtestGetVar(const std::string &name, const void **addr,
                  size_t *size);
/** @} */

/** @{ Communication with the checking engine. */
void pmtestSendTrace();
void pmtestGetResult();
/** Submit an externally built trace (kernel FIFO pump uses this). */
void pmtestSubmitTrace(Trace trace);
/**
 * Seal the calling thread's open trace and return it instead of
 * submitting it — the kernel-module path pushes sealed traces into a
 * KernelFifo whose user-space pump thread submits them.
 */
Trace pmtestSealTrace();
/**
 * Route sealed traces to an external tool instead of the PMTest
 * engine pool. Used by the baseline tools (the pmemcheck stand-in
 * consumes the same instrumentation stream, but synchronously).
 * Pass nullptr to restore the default routing.
 */
void pmtestSetTraceSink(std::function<void(Trace &&)> sink);
/** Merged findings so far (drains first). */
core::Report pmtestResults();
/** Drop accumulated findings. */
void pmtestClearResults();
/** @} */

/** @{ Checkers. */
void pmtestIsPersist(const void *addr, size_t size,
                     SourceLocation loc = {});
void pmtestIsOrderedBefore(const void *addr_a, size_t size_a,
                           const void *addr_b, size_t size_b,
                           SourceLocation loc = {});
void pmtestTxCheckerStart(SourceLocation loc = {});
void pmtestTxCheckerEnd(SourceLocation loc = {});
/** @} */

/**
 * @{ Instrumented PM primitives. These perform the real memory
 * operation, mirror it into an attached simulated pool (for crash
 * validation), and record it in the calling thread's trace.
 */
void pmStore(void *dst, const void *src, size_t size,
             SourceLocation loc = {});
void pmClwb(const void *addr, size_t size, SourceLocation loc = {});
void pmClflush(const void *addr, size_t size, SourceLocation loc = {});
void pmSfence(SourceLocation loc = {});
void pmOfence(SourceLocation loc = {});
void pmDfence(SourceLocation loc = {});
void pmDcCvap(const void *addr, size_t size, SourceLocation loc = {});
void pmDsb(SourceLocation loc = {});
/** @} */

/** Typed store convenience wrapper. */
template <typename T>
void
pmAssign(T *dst, const T &value, SourceLocation loc = {})
{
    pmStore(dst, &value, sizeof(T), loc);
}

/** @{ Transactional-library event hooks (consumed by TX checkers). */
void pmTxBegin(SourceLocation loc = {});
void pmTxEnd(SourceLocation loc = {});
void pmTxAdd(const void *addr, size_t size, SourceLocation loc = {});
/** @} */

/**
 * @{ Crash-simulation attachment: when a PmPool built with
 * simulate_crashes is attached, every instrumented store/flush/fence
 * that touches the pool is mirrored into its CacheSim.
 */
void pmtestAttachPool(pmem::PmPool *pool);
void pmtestDetachPool();
pmem::PmPool *pmtestAttachedPool();
/** @} */

/** @{ Statistics. */
uint64_t pmtestTracesSubmitted();
uint64_t pmtestOpsRecorded();
/**
 * Dispatch statistics of the engine pool (queue depths, steals,
 * producer stall time). Empty when the framework is not initialized.
 */
core::PoolStats pmtestPoolStats();
/** @} */

// Paper-style convenience macros that capture file/line, so reports
// point at the annotation site (Fig. 6's "WARN/FAIL @<file>:<line>").
#define PMTEST_STORE(dst, src, size) \
    ::pmtest::pmStore((dst), (src), (size), PMTEST_HERE)
#define PMTEST_ASSIGN(dst, value) \
    ::pmtest::pmAssign((dst), (value), PMTEST_HERE)
#define PMTEST_CLWB(addr, size) \
    ::pmtest::pmClwb((addr), (size), PMTEST_HERE)
#define PMTEST_SFENCE() ::pmtest::pmSfence(PMTEST_HERE)
#define PMTEST_OFENCE() ::pmtest::pmOfence(PMTEST_HERE)
#define PMTEST_DFENCE() ::pmtest::pmDfence(PMTEST_HERE)
#define PMTEST_DC_CVAP(addr, size) \
    ::pmtest::pmDcCvap((addr), (size), PMTEST_HERE)
#define PMTEST_DSB() ::pmtest::pmDsb(PMTEST_HERE)
#define PMTEST_IS_PERSIST(addr, size) \
    ::pmtest::pmtestIsPersist((addr), (size), PMTEST_HERE)
#define PMTEST_IS_ORDERED_BEFORE(a, sa, b, sb) \
    ::pmtest::pmtestIsOrderedBefore((a), (sa), (b), (sb), PMTEST_HERE)
#define PMTEST_TX_CHECKER_START() \
    ::pmtest::pmtestTxCheckerStart(PMTEST_HERE)
#define PMTEST_TX_CHECKER_END() ::pmtest::pmtestTxCheckerEnd(PMTEST_HERE)

} // namespace pmtest

#endif // PMTEST_CORE_API_HH
