/**
 * @file
 * Hint verification: the replay half of the detect→repair→verify
 * loop. A synthesized FixHint is only a proposal; verifyHints applies
 * each one to its trace with the trace-level patcher and replays the
 * patched trace through the same Engine that produced the finding. A
 * hint earns hint.verified when the original finding disappears and
 * the patch introduces no new findings — anything weaker (finding
 * merely moved, a FAIL traded for a WARN) is rejected.
 */

#ifndef PMTEST_CORE_FIX_VERIFY_HH
#define PMTEST_CORE_FIX_VERIFY_HH

#include <cstddef>
#include <vector>

#include "core/persistency_model.hh"
#include "core/report.hh"
#include "trace/trace.hh"
#include "trace/trace_source.hh"

namespace pmtest
{
class JsonWriter;
}

namespace pmtest::core
{

/** Outcome tallies of one verifyHints pass. */
struct HintVerifyStats
{
    size_t candidates = 0;   ///< findings carrying a valid hint
    size_t verified = 0;     ///< patched replay removed the finding
    size_t rejected = 0;     ///< replay kept it or added new findings
    size_t missingTrace = 0; ///< finding's trace was not supplied
};

/**
 * Verify every hinted finding in @p report by patched replay through
 * a fresh Engine of @p kind. Findings are matched to @p traces by
 * their (fileId, traceId) identity — stampIdentity() must have run
 * (Engine::check always does). Sets hint.verified on the findings
 * that pass; leaves everything else untouched.
 */
HintVerifyStats verifyHints(Report &report,
                            const std::vector<Trace> &traces,
                            ModelKind kind);

/**
 * Convenience overload: drain @p source (e.g. a re-opened input
 * file set) and verify against the drained traces.
 * @param error receives the first pull failure, if any; verification
 *        then proceeds against whatever was drained.
 */
HintVerifyStats verifyHints(Report &report, TraceSource &source,
                            ModelKind kind, SourceError *error = nullptr);

/**
 * Append the `pmtest-fixhints-v1` document — one record per hinted
 * finding (action, target range, ops, anchor, verified flag) plus the
 * pass tallies — as an object value to @p w.
 */
void writeFixHintsJson(JsonWriter &w, const Report &report,
                       const HintVerifyStats &stats, ModelKind kind);

} // namespace pmtest::core

#endif // PMTEST_CORE_FIX_VERIFY_HH
