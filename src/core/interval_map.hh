/**
 * @file
 * IntervalMap: an ordered map from disjoint address ranges to values,
 * with range assignment, range erase and overlap iteration — the
 * shadow-memory container (paper §4.4: "it maintains the shadow memory
 * as an interval tree ... update and lookup have complexity
 * O(log n)"). Assigning over existing ranges splits them so that the
 * untouched parts keep their old values.
 *
 * Storage is a flat sorted vector rather than a node-based tree:
 * lookups binary-search contiguous memory (no pointer chasing, no
 * per-range heap node), mutation splices with memmove, and clear()
 * retains capacity so a reused map (one shadow memory per engine
 * worker) stops allocating entirely in steady state. Shadow maps stay
 * small — tens of disjoint ranges — so the O(n) splice is far cheaper
 * in practice than the allocator traffic and cache misses of a
 * std::map node per range (see bench_ablation_shadow).
 */

#ifndef PMTEST_CORE_INTERVAL_MAP_HH
#define PMTEST_CORE_INTERVAL_MAP_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/interval.hh"

namespace pmtest::core
{

/**
 * Map from disjoint half-open ranges [start, end) to values of type V.
 *
 * Backed by a vector of ranges sorted by start; all mutating
 * operations keep the invariant that stored ranges never overlap (and
 * therefore both starts and ends are strictly increasing). Adjacent
 * equal values are not merged automatically (callers never rely on
 * merging, and splitting history can be useful when debugging).
 */
template <typename V>
class IntervalMap
{
  public:
    /**
     * One visited entry: [start, end) -> value. The value is a
     * reference into the map (valid for the duration of the callback
     * only): overlap iteration is the engine's hottest path, and
     * payloads like RangeStatus must not be copied per visit.
     */
    struct Entry
    {
        uint64_t start;
        uint64_t end;
        const V &value;
    };

    /**
     * Assign @p value to [range.addr, range.end()).
     *
     * Fused carve-and-insert: when the assignment replaces at least
     * one fully-covered stored item (the engine's hot path is
     * re-writing an already-tracked range), the new item overwrites
     * that slot in place and only the surplus items are spliced out —
     * an exact re-assignment touches no other element at all.
     */
    void
    assign(const AddrRange &range, V value)
    {
        if (range.empty())
            return;
        size_t idx = firstOverlap(range);
        if (idx == items_.size() || items_[idx].start >= range.end()) {
            // Nothing overlaps: plain sorted insert.
            items_.insert(
                items_.begin() + idx,
                Item{range.addr, range.end(), std::move(value)});
            return;
        }

        Item &first = items_[idx];
        if (first.start < range.addr && first.end > range.end()) {
            // One item strictly contains the range: split into
            // [left][new][right] with a single two-element splice.
            const Item middle{range.addr, range.end(),
                              std::move(value)};
            const Item right{range.end(), first.end, first.value};
            first.end = range.addr;
            items_.insert(items_.begin() + idx + 1, {middle, right});
            return;
        }

        if (first.start < range.addr) {
            // Left remainder keeps the old value in place.
            first.end = range.addr;
            idx++;
        }
        size_t last = idx;
        while (last < items_.size() && items_[last].end <= range.end())
            last++; // fully covered by the assignment
        if (last < items_.size() && items_[last].start < range.end()) {
            // Right remainder keeps the old value in place.
            items_[last].start = range.end();
        }
        if (last > idx) {
            // Reuse the first covered slot; drop the rest.
            items_[idx] =
                Item{range.addr, range.end(), std::move(value)};
            items_.erase(items_.begin() + idx + 1,
                         items_.begin() + last);
        } else {
            items_.insert(
                items_.begin() + idx,
                Item{range.addr, range.end(), std::move(value)});
        }
    }

    /** Remove any values within the range. */
    void
    erase(const AddrRange &range)
    {
        if (range.empty())
            return;
        carve(range);
    }

    /** Remove everything; the backing storage keeps its capacity. */
    void clear() { items_.clear(); }

    /**
     * Invoke @p fn for every stored entry overlapping @p range, in
     * address order. The entry passed is clipped to the overlap.
     * Templated on the callable: this is the engine's hottest path.
     */
    template <typename Fn>
    void
    forEachOverlap(const AddrRange &range, Fn &&fn) const
    {
        if (range.empty())
            return;
        for (size_t i = firstOverlap(range);
             i < items_.size() && items_[i].start < range.end(); i++) {
            const Item &item = items_[i];
            fn(Entry{std::max(item.start, range.addr),
                     std::min(item.end, range.end()), item.value});
        }
    }

    /**
     * Mutable overlap iteration: @p fn receives the value by reference
     * (the entry bounds are the stored, unclipped bounds).
     */
    template <typename Fn>
    void
    forEachOverlapMut(const AddrRange &range, Fn &&fn)
    {
        if (range.empty())
            return;
        for (size_t i = firstOverlap(range);
             i < items_.size() && items_[i].start < range.end(); i++)
            fn(items_[i].start, items_[i].end, items_[i].value);
    }

    /** Whether any entry overlaps the range. */
    bool
    anyOverlap(const AddrRange &range) const
    {
        if (range.empty())
            return false;
        const size_t i = firstOverlap(range);
        return i < items_.size() && items_[i].start < range.end();
    }

    /**
     * Whether the union of stored ranges fully covers @p range
     * (regardless of values).
     */
    bool
    covers(const AddrRange &range) const
    {
        if (range.empty())
            return true;
        uint64_t pos = range.addr;
        for (size_t i = firstOverlap(range);
             i < items_.size() && items_[i].start < range.end(); i++) {
            if (items_[i].start > pos)
                return false; // gap
            pos = std::max(pos, items_[i].end);
            if (pos >= range.end())
                return true;
        }
        return false;
    }

    /** Invoke @p fn for every stored entry, in address order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Item &item : items_)
            fn(Entry{item.start, item.end, item.value});
    }

    /** Number of stored (disjoint) entries. */
    size_t size() const { return items_.size(); }

    /** True when no entries are stored. */
    bool empty() const { return items_.empty(); }

    /** Entries the backing storage can hold without reallocating. */
    size_t capacity() const { return items_.capacity(); }

    /** Pre-size the backing storage. */
    void reserve(size_t entries) { items_.reserve(entries); }

  private:
    struct Item
    {
        uint64_t start;
        uint64_t end;
        V value;
    };

    /**
     * Index of the first stored item with end > range.addr — the only
     * candidate for overlapping @p range (items are disjoint and
     * sorted, so ends are sorted too). The item may still start at or
     * beyond range.end(); callers bound their walk on that.
     */
    size_t
    firstOverlap(const AddrRange &range) const
    {
        size_t idx = static_cast<size_t>(
            std::upper_bound(items_.begin(), items_.end(), range.addr,
                             [](uint64_t addr, const Item &item) {
                                 return addr < item.start;
                             }) -
            items_.begin());
        if (idx > 0 && items_[idx - 1].end > range.addr)
            idx--;
        return idx;
    }

    /**
     * Remove the range from all stored items, splitting boundary items
     * so their parts outside the range survive.
     * @return the index at which an item starting at range.addr
     *         belongs after the carve (assign() inserts there).
     */
    size_t
    carve(const AddrRange &range)
    {
        size_t idx = firstOverlap(range);
        if (idx == items_.size() || items_[idx].start >= range.end())
            return idx; // nothing overlaps

        Item &first = items_[idx];
        if (first.start < range.addr && first.end > range.end()) {
            // One item strictly contains the range: split in two.
            Item right{range.end(), first.end, first.value};
            first.end = range.addr;
            items_.insert(items_.begin() + idx + 1, std::move(right));
            return idx + 1;
        }

        if (first.start < range.addr) {
            // Left remainder keeps the old value in place.
            first.end = range.addr;
            idx++;
        }
        size_t last = idx;
        while (last < items_.size() && items_[last].end <= range.end())
            last++; // fully covered: drop
        if (last < items_.size() && items_[last].start < range.end()) {
            // Right remainder keeps the old value in place.
            items_[last].start = range.end();
        }
        items_.erase(items_.begin() + idx, items_.begin() + last);
        return idx;
    }

    std::vector<Item> items_;
};

} // namespace pmtest::core

#endif // PMTEST_CORE_INTERVAL_MAP_HH
