/**
 * @file
 * IntervalMap: an ordered map from disjoint address ranges to values,
 * with range assignment, range erase, overlap iteration and batched
 * variants of both — the shadow-memory container (paper §4.4: "it
 * maintains the shadow memory as an interval tree ... update and
 * lookup have complexity O(log n)"). Assigning over existing ranges
 * splits them so that the untouched parts keep their old values.
 *
 * Storage is a chunked sorted vector — an ordered sequence of small
 * fixed-capacity sorted runs (a shallow B-tree with implicit root):
 * locating a range binary-searches the chunk summaries (cached
 * lo/hi bounds, contiguous in memory) and then one small run, so
 * lookups keep the flat layout's cache behavior, while mutation
 * splices within a single chunk — O(chunk), not O(n). That caps the
 * cost of the sparse adversarial shapes (thousands of live entries)
 * that made a single flat vector quadratic, without paying std::map's
 * per-entry heap node and pointer chase on the small maps engine
 * traces produce (see bench_ablation_shadow and the storage sections
 * of bench_kernel; the previous layouts are preserved in
 * bench/flat_interval_map.hh and bench/node_interval_map.hh).
 *
 * Retired chunk buffers park on an internal free-list, and clear()
 * recycles every chunk there, so a reused map (one shadow memory per
 * engine worker) stops allocating entirely in steady state. A cached
 * chunk-index hint makes the sequential-address access pattern engine
 * traces actually produce O(1) per lookup; const accessors read the
 * hint but never write it, so concurrent readers stay race-free.
 */

#ifndef PMTEST_CORE_INTERVAL_MAP_HH
#define PMTEST_CORE_INTERVAL_MAP_HH

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

#include "core/interval.hh"

namespace pmtest::core
{

/**
 * Map from disjoint half-open ranges [start, end) to values of type V.
 *
 * All mutating operations keep the invariant that stored ranges never
 * overlap (and therefore both starts and ends are strictly
 * increasing). Adjacent equal values are not merged automatically:
 * callers never rely on merging, splitting history can be useful when
 * debugging, and — decisively — stored entry bounds leak into finding
 * messages, so the fragmentation produced by a given op sequence is
 * part of the engine's observable, deterministic behavior. The batch
 * operations preserve exactly that fragmentation (see assignBatch).
 */
template <typename V>
class IntervalMap
{
  public:
    /**
     * Entries per chunk before it splits. Sized so the small hot
     * working sets engine traces produce (a few KiB of shadow state,
     * ~100 live entries) stay in one chunk — where the layout is
     * exactly the flat vector — while sparse populations split into
     * O(chunk)-splice runs.
     */
    static constexpr size_t kChunkCapacity = 128;
    /** A chunk smaller than this tries to merge with a neighbor. */
    static constexpr size_t kMergeThreshold = 24;
    /**
     * Merges only happen when the combined chunk stays at or below
     * this; the gap to kChunkCapacity is hysteresis so an
     * assign/erase flip-flop at a seam cannot thrash split+merge.
     */
    static constexpr size_t kMergeLimit = 96;

    /**
     * One visited entry: [start, end) -> value. The value is a
     * reference into the map (valid for the duration of the callback
     * only): overlap iteration is the engine's hottest path, and
     * payloads like RangeStatus must not be copied per visit.
     */
    struct Entry
    {
        uint64_t start;
        uint64_t end;
        const V &value;
    };

    /**
     * Assign @p value to [range.addr, range.end()).
     *
     * Fused carve-and-insert within a chunk: when the assignment
     * replaces at least one fully-covered stored item (the engine's
     * hot path is re-writing an already-tracked range), the new item
     * overwrites that slot in place and only the surplus items are
     * spliced out — an exact re-assignment touches no other element.
     */
    void
    assign(const AddrRange &range, V value)
    {
        if (range.empty())
            return;
        if (chunks_.empty()) {
            insertChunk(0,
                        Item{range.addr, range.end(), std::move(value)});
            hint_ = 0;
            return;
        }
        size_t ci = chunkLowerBound(range.addr);
        if (ci == chunks_.size()) {
            // Starts at or past the last chunk's end: append there.
            ci = chunks_.size() - 1;
            Chunk &c = chunks_[ci];
            c.items.push_back(
                Item{range.addr, range.end(), std::move(value)});
            c.hi = range.end();
            hint_ = ci;
            maybeSplit(ci);
            return;
        }
        hint_ = ci;
        if (ci + 1 == chunks_.size() ||
            chunks_[ci + 1].lo >= range.end()) {
            assignWithin(ci, range, std::move(value));
            return;
        }
        spliceAcross(ci, range, &value);
    }

    /**
     * Batched assign: @p value is assigned to each of the @p n ranges.
     *
     * REQUIRES: ranges sorted by addr and pairwise disjoint. Because
     * disjoint same-value assignments commute, the stored
     * fragmentation is byte-identical to n individual assign() calls
     * in the caller's original order — the batch only amortizes the
     * per-op binary search and splice. Runs of ranges that land in the
     * same inter-item gap (the sparse-workload pattern) become one
     * multi-element splice.
     */
    void
    assignBatch(const AddrRange *ranges, size_t n, const V &value)
    {
        size_t i = 0;
        while (i < n) {
            const AddrRange &r = ranges[i];
            if (r.empty()) {
                i++;
                continue;
            }
            const size_t ci = chunkLowerBound(r.addr);
            if (ci == chunks_.size()) {
                i = appendRun(ranges, i, n, value);
                continue;
            }
            const Chunk &c = chunks_[ci];
            const size_t idx = itemLowerBound(c, r.addr);
            if ((idx < c.items.size() &&
                 c.items[idx].start < r.end()) ||
                (ci + 1 < chunks_.size() &&
                 chunks_[ci + 1].lo < r.end())) {
                // Overlaps stored items (possibly across a seam):
                // the single-op path already handles every carve
                // case, and the hint keeps it O(chunk).
                assign(r, value);
                i++;
                continue;
            }
            i = gapInsertRun(ci, idx, ranges, i, n, value);
        }
    }

    /** Remove any values within the range. */
    void
    erase(const AddrRange &range)
    {
        if (range.empty() || chunks_.empty())
            return;
        const size_t ci = chunkLowerBound(range.addr);
        if (ci == chunks_.size())
            return;
        hint_ = ci;
        if (ci + 1 == chunks_.size() ||
            chunks_[ci + 1].lo >= range.end())
            eraseWithin(ci, range);
        else
            spliceAcross(ci, range, nullptr);
    }

    /** Remove everything; chunk storage is retained for reuse. */
    void
    clear()
    {
        for (Chunk &c : chunks_)
            recycle(std::move(c.items));
        chunks_.clear();
        hint_ = 0;
    }

    /**
     * Invoke @p fn for every stored entry overlapping @p range, in
     * address order. The entry passed is clipped to the overlap.
     * Templated on the callable: this is the engine's hottest path.
     */
    template <typename Fn>
    void
    forEachOverlap(const AddrRange &range, Fn &&fn) const
    {
        if (range.empty())
            return;
        const size_t first = chunkLowerBound(range.addr);
        for (size_t ci = first; ci < chunks_.size(); ci++) {
            const Chunk &c = chunks_[ci];
            if (c.lo >= range.end())
                break;
            size_t i = ci == first ? itemLowerBound(c, range.addr) : 0;
            for (; i < c.items.size() && c.items[i].start < range.end();
                 i++) {
                const Item &item = c.items[i];
                fn(Entry{std::max(item.start, range.addr),
                         std::min(item.end, range.end()), item.value});
            }
        }
    }

    /**
     * Mutable overlap iteration: @p fn receives the value by reference
     * (the entry bounds are the stored, unclipped bounds). @p fn must
     * not mutate the map's structure.
     */
    template <typename Fn>
    void
    forEachOverlapMut(const AddrRange &range, Fn &&fn)
    {
        if (range.empty())
            return;
        const size_t first = chunkLowerBound(range.addr);
        for (size_t ci = first; ci < chunks_.size(); ci++) {
            Chunk &c = chunks_[ci];
            if (c.lo >= range.end())
                break;
            size_t i = ci == first ? itemLowerBound(c, range.addr) : 0;
            for (; i < c.items.size() && c.items[i].start < range.end();
                 i++)
                fn(c.items[i].start, c.items[i].end, c.items[i].value);
        }
    }

    /**
     * Batched overlap iteration: one monotone walk visits, for each
     * range in turn, every stored entry overlapping it (clipped), as
     * fn(range_index, Entry). REQUIRES: ranges sorted by addr and
     * pairwise disjoint. Equivalent to n forEachOverlap calls but the
     * cursor never re-searches from the root.
     */
    template <typename Fn>
    void
    forEachOverlapBatch(const AddrRange *ranges, size_t n,
                        Fn &&fn) const
    {
        batchWalk(ranges, n, [&](size_t r, const Item &item,
                                 const AddrRange &range) {
            fn(r, Entry{std::max(item.start, range.addr),
                        std::min(item.end, range.end()), item.value});
        });
    }

    /**
     * Batched mutable overlap iteration: fn(range_index, start, end,
     * value&) with stored (unclipped) bounds. Same REQUIRES as
     * forEachOverlapBatch; @p fn must not mutate the map's structure.
     */
    template <typename Fn>
    void
    forEachOverlapBatchMut(const AddrRange *ranges, size_t n, Fn &&fn)
    {
        batchWalk(ranges, n,
                  [&](size_t r, const Item &item, const AddrRange &) {
                      fn(r, item.start, item.end,
                         const_cast<V &>(item.value));
                  });
    }

    /** Whether any entry overlaps the range. */
    bool
    anyOverlap(const AddrRange &range) const
    {
        if (range.empty() || chunks_.empty())
            return false;
        const size_t ci = chunkLowerBound(range.addr);
        if (ci == chunks_.size() || chunks_[ci].lo >= range.end())
            return false;
        const Chunk &c = chunks_[ci];
        const size_t i = itemLowerBound(c, range.addr);
        return i < c.items.size() && c.items[i].start < range.end();
    }

    /**
     * Whether the union of stored ranges fully covers @p range
     * (regardless of values).
     */
    bool
    covers(const AddrRange &range) const
    {
        if (range.empty())
            return true;
        uint64_t pos = range.addr;
        const size_t first = chunkLowerBound(range.addr);
        for (size_t ci = first; ci < chunks_.size(); ci++) {
            const Chunk &c = chunks_[ci];
            if (c.lo >= range.end())
                break;
            size_t i = ci == first ? itemLowerBound(c, range.addr) : 0;
            for (; i < c.items.size() && c.items[i].start < range.end();
                 i++) {
                if (c.items[i].start > pos)
                    return false; // gap
                pos = std::max(pos, c.items[i].end);
                if (pos >= range.end())
                    return true;
            }
        }
        return false;
    }

    /** Invoke @p fn for every stored entry, in address order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Chunk &c : chunks_)
            for (const Item &item : c.items)
                fn(Entry{item.start, item.end, item.value});
    }

    /** Number of stored (disjoint) entries. */
    size_t
    size() const
    {
        size_t total = 0;
        for (const Chunk &c : chunks_)
            total += c.items.size();
        return total;
    }

    /** True when no entries are stored. */
    bool empty() const { return chunks_.empty(); }

    /** Entries the backing storage can hold without reallocating. */
    size_t
    capacity() const
    {
        size_t total = 0;
        for (const Chunk &c : chunks_)
            total += c.items.capacity();
        for (const std::vector<Item> &v : spare_)
            total += v.capacity();
        return total;
    }

    /** Pre-size the backing storage (whole spare chunks). */
    void
    reserve(size_t entries)
    {
        size_t have = capacity();
        while (have < entries) {
            std::vector<Item> v;
            v.reserve(kChunkCapacity + 2);
            have += v.capacity();
            spare_.push_back(std::move(v));
        }
    }

    /** Number of chunks (layout diagnostics and tests). */
    size_t chunkCount() const { return chunks_.size(); }

    /**
     * Structural invariant check for tests: chunks non-empty and at
     * most kChunkCapacity entries, cached bounds in sync, all entries
     * non-empty, disjoint and globally sorted.
     */
    bool
    validate() const
    {
        uint64_t prev = 0;
        bool first = true;
        for (const Chunk &c : chunks_) {
            if (c.items.empty() ||
                c.items.size() > kChunkCapacity)
                return false;
            if (c.lo != c.items.front().start ||
                c.hi != c.items.back().end)
                return false;
            for (const Item &item : c.items) {
                if (item.start >= item.end)
                    return false;
                if (!first && item.start < prev)
                    return false;
                prev = item.end;
                first = false;
            }
        }
        return true;
    }

  private:
    struct Item
    {
        uint64_t start;
        uint64_t end;
        V value;
    };

    /**
     * One sorted run. Non-empty by invariant; lo/hi cache
     * items.front().start / items.back().end so chunk location never
     * touches item storage. Buffers are reserved to kChunkCapacity+2
     * (the worst transient before a split is capacity plus a
     * two-element strict-containment splice), so a chunk vector never
     * reallocates after creation.
     */
    struct Chunk
    {
        uint64_t lo = 0;
        uint64_t hi = 0;
        std::vector<Item> items;

        void
        sync()
        {
            lo = items.front().start;
            hi = items.back().end;
        }
    };

    /**
     * Index of the first chunk with hi > addr — the only chunk that
     * can contain an item overlapping an address-sorted probe at
     * @p addr. Validates the cached hint (and its successor) before
     * falling back to binary search; never writes the hint, so const
     * lookups are safe under concurrent readers.
     */
    size_t
    chunkLowerBound(uint64_t addr) const
    {
        const size_t n = chunks_.size();
        if (n == 0)
            return 0;
        if (n == 1) // small maps: the layout is one flat run
            return chunks_[0].hi > addr ? 0 : 1;
        const size_t h = hint_;
        if (h < n && chunks_[h].hi > addr &&
            (h == 0 || chunks_[h - 1].hi <= addr))
            return h;
        if (h + 1 < n && chunks_[h].hi <= addr &&
            chunks_[h + 1].hi > addr)
            return h + 1;
        size_t lo = 0, up = n;
        while (lo < up) {
            const size_t mid = lo + (up - lo) / 2;
            if (chunks_[mid].hi > addr)
                up = mid;
            else
                lo = mid + 1;
        }
        return lo;
    }

    /**
     * Index of the first item in @p c with end > addr — the only
     * candidate for overlapping a range starting at @p addr (items are
     * disjoint and sorted, so ends are sorted too). The item may still
     * start at or beyond the probe range's end; callers bound on that.
     */
    static size_t
    itemLowerBound(const Chunk &c, uint64_t addr)
    {
        size_t idx = static_cast<size_t>(
            std::upper_bound(c.items.begin(), c.items.end(), addr,
                             [](uint64_t a, const Item &item) {
                                 return a < item.start;
                             }) -
            c.items.begin());
        if (idx > 0 && c.items[idx - 1].end > addr)
            idx--;
        return idx;
    }

    /** Pop a retired buffer, or make one with the standard reserve. */
    std::vector<Item>
    takeSpare()
    {
        if (!spare_.empty()) {
            std::vector<Item> v = std::move(spare_.back());
            spare_.pop_back();
            return v;
        }
        std::vector<Item> v;
        v.reserve(kChunkCapacity + 2);
        return v;
    }

    /** Park a chunk buffer on the free-list for reuse. */
    void
    recycle(std::vector<Item> &&v)
    {
        v.clear();
        spare_.push_back(std::move(v));
    }

    /** Insert a fresh single-item chunk at chunk position @p pos. */
    void
    insertChunk(size_t pos, Item item)
    {
        Chunk c;
        c.items = takeSpare();
        c.items.push_back(std::move(item));
        c.sync();
        chunks_.insert(chunks_.begin() + pos, std::move(c));
    }

    /** Split chunk @p ci in half if it outgrew kChunkCapacity. */
    void
    maybeSplit(size_t ci)
    {
        Chunk &c = chunks_[ci];
        if (c.items.size() <= kChunkCapacity)
            return;
        const size_t half = c.items.size() / 2;
        Chunk right;
        right.items = takeSpare();
        right.items.insert(right.items.end(),
                           std::make_move_iterator(c.items.begin() +
                                                   half),
                           std::make_move_iterator(c.items.end()));
        c.items.erase(c.items.begin() + half, c.items.end());
        c.sync();
        right.sync();
        chunks_.insert(chunks_.begin() + ci + 1, std::move(right));
    }

    /**
     * Merge chunk @p ci with its smaller neighbor when @p ci dropped
     * below kMergeThreshold and the pair fits in kMergeLimit.
     */
    void
    maybeMerge(size_t ci)
    {
        if (chunks_[ci].items.size() >= kMergeThreshold)
            return;
        size_t buddy = ci; // sentinel: no neighbor
        if (ci > 0)
            buddy = ci - 1;
        if (ci + 1 < chunks_.size() &&
            (buddy == ci || chunks_[ci + 1].items.size() <
                                chunks_[buddy].items.size()))
            buddy = ci + 1;
        if (buddy == ci)
            return;
        if (chunks_[ci].items.size() + chunks_[buddy].items.size() >
            kMergeLimit)
            return;
        const size_t left = std::min(ci, buddy);
        const size_t right = std::max(ci, buddy);
        Chunk &l = chunks_[left];
        Chunk &r = chunks_[right];
        l.items.insert(l.items.end(),
                       std::make_move_iterator(r.items.begin()),
                       std::make_move_iterator(r.items.end()));
        l.sync();
        recycle(std::move(r.items));
        chunks_.erase(chunks_.begin() + right);
        hint_ = left;
    }

    /**
     * assign() restricted to chunk @p ci — the range overlaps no later
     * chunk. This is the flat map's fused carve-and-insert, applied to
     * one small run.
     */
    void
    assignWithin(size_t ci, const AddrRange &range, V value)
    {
        Chunk &c = chunks_[ci];
        std::vector<Item> &items = c.items;
        size_t idx = itemLowerBound(c, range.addr);
        if (idx == items.size() || items[idx].start >= range.end()) {
            // Nothing overlaps: plain sorted insert.
            items.insert(
                items.begin() + idx,
                Item{range.addr, range.end(), std::move(value)});
            c.sync();
            maybeSplit(ci);
            return;
        }

        Item &first = items[idx];
        if (first.start < range.addr && first.end > range.end()) {
            // One item strictly contains the range: split into
            // [left][new][right] with a single two-element splice.
            const Item middle{range.addr, range.end(),
                              std::move(value)};
            const Item right{range.end(), first.end, first.value};
            first.end = range.addr;
            items.insert(items.begin() + idx + 1, {middle, right});
            c.sync();
            maybeSplit(ci);
            return;
        }

        if (first.start < range.addr) {
            // Left remainder keeps the old value in place.
            first.end = range.addr;
            idx++;
        }
        size_t last = idx;
        while (last < items.size() && items[last].end <= range.end())
            last++; // fully covered by the assignment
        if (last < items.size() && items[last].start < range.end()) {
            // Right remainder keeps the old value in place.
            items[last].start = range.end();
        }
        if (last > idx) {
            // Reuse the first covered slot; drop the rest.
            items[idx] =
                Item{range.addr, range.end(), std::move(value)};
            items.erase(items.begin() + idx + 1,
                        items.begin() + last);
            c.sync();
            maybeMerge(ci);
        } else {
            items.insert(
                items.begin() + idx,
                Item{range.addr, range.end(), std::move(value)});
            c.sync();
            maybeSplit(ci);
        }
    }

    /** erase() restricted to chunk @p ci (the flat map's carve). */
    void
    eraseWithin(size_t ci, const AddrRange &range)
    {
        Chunk &c = chunks_[ci];
        std::vector<Item> &items = c.items;
        size_t idx = itemLowerBound(c, range.addr);
        if (idx == items.size() || items[idx].start >= range.end())
            return; // nothing overlaps

        Item &first = items[idx];
        if (first.start < range.addr && first.end > range.end()) {
            // One item strictly contains the range: split in two.
            Item right{range.end(), first.end, first.value};
            first.end = range.addr;
            items.insert(items.begin() + idx + 1, std::move(right));
            c.sync();
            maybeSplit(ci);
            return;
        }

        if (first.start < range.addr) {
            // Left remainder keeps the old value in place.
            first.end = range.addr;
            idx++;
        }
        size_t last = idx;
        while (last < items.size() && items[last].end <= range.end())
            last++; // fully covered: drop
        if (last < items.size() && items[last].start < range.end()) {
            // Right remainder keeps the old value in place.
            items[last].start = range.end();
        }
        items.erase(items.begin() + idx, items.begin() + last);
        if (items.empty()) {
            recycle(std::move(items));
            chunks_.erase(chunks_.begin() + ci);
            hint_ = 0;
        } else {
            c.sync();
            maybeMerge(ci);
        }
    }

    /**
     * Carve @p range out of chunks ci..: truncate the tail of chunk
     * @p ci, recycle fully-covered middle chunks whole, carve the
     * prefix of the final partially-overlapped chunk — then, when
     * @p value is non-null (assign), append the new item to chunk
     * @p ci. O(chunk) item movement plus O(chunks) header splice.
     *
     * Preconditions: chunks_[ci].hi > range.addr and
     * chunks_[ci + 1].lo < range.end() (the range crosses the seam).
     */
    void
    spliceAcross(size_t ci, const AddrRange &range, V *value)
    {
        {
            // Tail-carve chunk ci. Every item at/after the probe
            // index ends at most at chunks_[ci].hi, which is below
            // range.end() (the range crosses the seam), so apart
            // from a possible left remainder they are all covered.
            Chunk &c = chunks_[ci];
            size_t idx = itemLowerBound(c, range.addr);
            if (idx < c.items.size()) {
                if (c.items[idx].start < range.addr) {
                    c.items[idx].end = range.addr; // left remainder
                    idx++;
                }
                c.items.erase(c.items.begin() + idx, c.items.end());
            }
        }

        // Recycle middle chunks the range covers entirely. Their
        // items all start above range.addr (chunk spans are disjoint)
        // and end at most at their hi <= range.end().
        size_t m = ci + 1;
        while (m < chunks_.size() && chunks_[m].hi <= range.end()) {
            recycle(std::move(chunks_[m].items));
            m++;
        }

        if (m < chunks_.size() && chunks_[m].lo < range.end()) {
            // Prefix-carve the final chunk. Its lo sits above
            // range.addr, so there is no left remainder; its hi is
            // above range.end(), so the last item always survives.
            Chunk &f = chunks_[m];
            size_t j = 0;
            while (j < f.items.size() &&
                   f.items[j].end <= range.end())
                j++; // fully covered: drop
            if (j < f.items.size() &&
                f.items[j].start < range.end())
                f.items[j].start = range.end(); // right remainder
            f.items.erase(f.items.begin(), f.items.begin() + j);
            f.sync();
        }
        if (m > ci + 1)
            chunks_.erase(chunks_.begin() + ci + 1,
                          chunks_.begin() + m);

        Chunk &c = chunks_[ci];
        if (value) {
            // The surviving items of chunk ci all end at or before
            // range.addr, so the new item appends in order.
            c.items.push_back(
                Item{range.addr, range.end(), std::move(*value)});
            c.sync();
            maybeSplit(ci);
            maybeMerge(ci);
        } else if (c.items.empty()) {
            recycle(std::move(c.items));
            chunks_.erase(chunks_.begin() + ci);
            hint_ = 0;
        } else {
            c.sync();
            maybeMerge(ci);
        }
    }

    /**
     * assignBatch helper: every remaining range starts at or past the
     * last chunk's end (ranges are sorted), so consume them all with
     * plain appends, opening fresh chunks as runs fill.
     */
    size_t
    appendRun(const AddrRange *ranges, size_t i, size_t n,
              const V &value)
    {
        while (i < n) {
            const AddrRange &r = ranges[i];
            i++;
            if (r.empty())
                continue;
            if (chunks_.empty() ||
                chunks_.back().items.size() >= kChunkCapacity) {
                Chunk c;
                c.items = takeSpare();
                c.items.push_back(Item{r.addr, r.end(), value});
                c.sync();
                chunks_.push_back(std::move(c));
            } else {
                Chunk &c = chunks_.back();
                c.items.push_back(Item{r.addr, r.end(), value});
                c.hi = r.end();
            }
        }
        hint_ = chunks_.empty() ? 0 : chunks_.size() - 1;
        return i;
    }

    /**
     * assignBatch helper: ranges[i] overlaps nothing and belongs at
     * item position @p idx of chunk @p ci. Take the longest run of
     * following ranges that fit in the same gap (before the next
     * stored item) and splice them in with one insert, bounded so the
     * chunk buffer never reallocates.
     */
    size_t
    gapInsertRun(size_t ci, size_t idx, const AddrRange *ranges,
                 size_t i, size_t n, const V &value)
    {
        Chunk &c = chunks_[ci];
        const uint64_t limit = c.items[idx].start;
        const size_t room = kChunkCapacity + 2 - c.items.size();
        size_t k = 0;
        while (i + k < n && k < room && !ranges[i + k].empty() &&
               ranges[i + k].end() <= limit)
            k++;
        scratch_.clear();
        for (size_t t = 0; t < k; t++)
            scratch_.push_back(
                Item{ranges[i + t].addr, ranges[i + t].end(), value});
        c.items.insert(c.items.begin() + idx,
                       std::make_move_iterator(scratch_.begin()),
                       std::make_move_iterator(scratch_.end()));
        c.sync();
        hint_ = ci;
        maybeSplit(ci);
        return i + k;
    }

    /**
     * Shared cursor walk behind the batch iterations: for each range,
     * advance a monotone (chunk, item) cursor to the first item with
     * end > range.addr, then visit items until start >= range.end().
     * The cursor is left at the range's first overlap candidate — an
     * item spanning two probe ranges is revisited, never skipped.
     */
    template <typename Visit>
    void
    batchWalk(const AddrRange *ranges, size_t n, Visit &&visit) const
    {
        if (chunks_.empty())
            return;
        size_t r = 0;
        while (r < n && ranges[r].empty())
            r++;
        if (r == n)
            return;
        size_t ci = chunkLowerBound(ranges[r].addr);
        size_t ii = 0;
        for (; r < n; r++) {
            const AddrRange &range = ranges[r];
            if (range.empty())
                continue;
            while (ci < chunks_.size()) {
                const Chunk &c = chunks_[ci];
                if (c.hi <= range.addr) {
                    ci++;
                    ii = 0;
                    continue;
                }
                while (ii < c.items.size() &&
                       c.items[ii].end <= range.addr)
                    ii++;
                break; // c.hi > range.addr, so ii is in bounds
            }
            if (ci == chunks_.size())
                return; // nothing left for any later range either
            size_t cj = ci, jj = ii;
            while (cj < chunks_.size()) {
                const Chunk &c = chunks_[cj];
                if (jj == c.items.size()) {
                    cj++;
                    jj = 0;
                    continue;
                }
                const Item &item = c.items[jj];
                if (item.start >= range.end())
                    break;
                visit(r, item, range);
                jj++;
            }
        }
    }

    std::vector<Chunk> chunks_;
    /** Retired chunk buffers, capacity intact, ready for takeSpare. */
    std::vector<std::vector<Item>> spare_;
    /** Batch-splice staging buffer (gapInsertRun). */
    std::vector<Item> scratch_;
    /**
     * Chunk index of the last mutation — sequential traces keep
     * hitting the same chunk, making chunk location O(1). Only
     * mutating operations write it.
     */
    size_t hint_ = 0;
};

} // namespace pmtest::core

#endif // PMTEST_CORE_INTERVAL_MAP_HH
