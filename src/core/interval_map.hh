/**
 * @file
 * IntervalMap: an ordered map from disjoint address ranges to values,
 * with range assignment, range erase and overlap iteration — the
 * shadow-memory container (paper §4.4: "it maintains the shadow memory
 * as an interval tree ... update and lookup have complexity
 * O(log n)"). Assigning over existing ranges splits them so that the
 * untouched parts keep their old values.
 */

#ifndef PMTEST_CORE_INTERVAL_MAP_HH
#define PMTEST_CORE_INTERVAL_MAP_HH

#include <cstdint>
#include <map>

#include "core/interval.hh"

namespace pmtest::core
{

/**
 * Map from disjoint half-open ranges [start, end) to values of type V.
 *
 * Backed by std::map keyed by range start; all mutating operations
 * keep the invariant that stored ranges never overlap. Adjacent equal
 * values are not merged automatically (callers never rely on merging,
 * and splitting history can be useful when debugging).
 */
template <typename V>
class IntervalMap
{
  public:
    /**
     * One visited entry: [start, end) -> value. The value is a
     * reference into the map (valid for the duration of the callback
     * only): overlap iteration is the engine's hottest path, and
     * payloads like RangeStatus must not be copied per visit.
     */
    struct Entry
    {
        uint64_t start;
        uint64_t end;
        const V &value;
    };

    /** Assign @p value to [range.addr, range.end()). */
    void
    assign(const AddrRange &range, V value)
    {
        if (range.empty())
            return;
        carve(range);
        map_[range.addr] = Slot{range.end(), std::move(value)};
    }

    /** Remove any values within the range. */
    void
    erase(const AddrRange &range)
    {
        if (range.empty())
            return;
        carve(range);
    }

    /** Remove everything. */
    void clear() { map_.clear(); }

    /**
     * Invoke @p fn for every stored entry overlapping @p range, in
     * address order. The entry passed is clipped to the overlap.
     * Templated on the callable: this is the engine's hottest path.
     */
    template <typename Fn>
    void
    forEachOverlap(const AddrRange &range, Fn &&fn) const
    {
        if (range.empty())
            return;
        auto it = firstOverlap(range);
        for (; it != map_.end() && it->first < range.end(); ++it) {
            fn(Entry{std::max(it->first, range.addr),
                     std::min(it->second.end, range.end()),
                     it->second.value});
        }
    }

    /**
     * Mutable overlap iteration: @p fn receives the value by reference
     * (the entry bounds are the stored, unclipped bounds).
     */
    template <typename Fn>
    void
    forEachOverlapMut(const AddrRange &range, Fn &&fn)
    {
        if (range.empty())
            return;
        auto it = firstOverlapMut(range);
        for (; it != map_.end() && it->first < range.end(); ++it)
            fn(it->first, it->second.end, it->second.value);
    }

    /** Whether any entry overlaps the range. */
    bool
    anyOverlap(const AddrRange &range) const
    {
        if (range.empty())
            return false;
        auto it = firstOverlap(range);
        return it != map_.end() && it->first < range.end();
    }

    /**
     * Whether the union of stored ranges fully covers @p range
     * (regardless of values).
     */
    bool
    covers(const AddrRange &range) const
    {
        if (range.empty())
            return true;
        uint64_t pos = range.addr;
        auto it = firstOverlap(range);
        for (; it != map_.end() && it->first < range.end(); ++it) {
            if (it->first > pos)
                return false; // gap
            pos = std::max(pos, it->second.end);
            if (pos >= range.end())
                return true;
        }
        return false;
    }

    /** Invoke @p fn for every stored entry, in address order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[start, slot] : map_)
            fn(Entry{start, slot.end, slot.value});
    }

    /** Number of stored (disjoint) entries. */
    size_t size() const { return map_.size(); }

    /** True when no entries are stored. */
    bool empty() const { return map_.empty(); }

  private:
    struct Slot
    {
        uint64_t end;
        V value;
    };

    using Map = std::map<uint64_t, Slot>;

    /** First stored entry that overlaps @p range (const). */
    typename Map::const_iterator
    firstOverlap(const AddrRange &range) const
    {
        auto it = map_.upper_bound(range.addr);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end > range.addr)
                return prev;
        }
        return it;
    }

    /** First stored entry that overlaps @p range (mutable). */
    typename Map::iterator
    firstOverlapMut(const AddrRange &range)
    {
        auto it = map_.upper_bound(range.addr);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end > range.addr)
                return prev;
        }
        return it;
    }

    /**
     * Remove the range from all stored entries, splitting boundary
     * entries so their parts outside the range survive.
     */
    void
    carve(const AddrRange &range)
    {
        auto it = firstOverlapMut(range);
        while (it != map_.end() && it->first < range.end()) {
            const uint64_t e_start = it->first;
            const uint64_t e_end = it->second.end;
            V value = std::move(it->second.value);
            it = map_.erase(it);

            if (e_start < range.addr) {
                // Left remainder keeps the old value.
                map_[e_start] = Slot{range.addr, value};
            }
            if (e_end > range.end()) {
                // Right remainder keeps the old value.
                it = map_.emplace(range.end(),
                                  Slot{e_end, std::move(value)})
                         .first;
                ++it;
            }
        }
    }

    Map map_;
};

} // namespace pmtest::core

#endif // PMTEST_CORE_INTERVAL_MAP_HH
