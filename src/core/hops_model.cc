#include "core/hops_model.hh"

namespace pmtest::core
{

FixHint
HopsModel::durabilityHint(const AddrRange &range,
                          const ShadowMemory &shadow,
                          size_t op_index) const
{
    // HOPS hardware writes back on its own; durability only needs a
    // dfence, whatever the flush state looks like.
    (void)range;
    (void)shadow;
    FixHint hint;
    hint.action = FixAction::InsertFence;
    hint.opIndex = op_index;
    hint.flushOp = repairFlushOp();
    hint.fenceOp = OpType::Dfence;
    return hint;
}

FixHint
HopsModel::orderingHint(const AddrRange &a, const AddrRange &b,
                        const ShadowMemory &shadow,
                        size_t op_index) const
{
    // Epoch ordering is all checkOrderedBefore requires: the
    // lightweight ofence between the two writes is the whole fix —
    // no durability of A needed, so no writeback either.
    (void)shadow;
    FixHint hint;
    hint.action = FixAction::InsertOrdering;
    hint.addr = a.addr;
    hint.size = a.size;
    hint.addrB = b.addr;
    hint.sizeB = b.size;
    hint.opIndex = op_index;
    hint.flushOp = repairFlushOp();
    hint.fenceOp = OpType::Ofence;
    hint.withFlush = false;
    return hint;
}

bool
HopsModel::checkOrderedBefore(const AddrRange &a, const AddrRange &b,
                              const ShadowMemory &shadow,
                              std::string *why) const
{
    // HOPS fences already enforce persist order, so ordering holds as
    // soon as every A-interval *starts* strictly before every
    // B-interval (paper §5.2) — durability of A is not required.
    const auto a_ivals = shadow.persistIntervals(a);
    const auto b_ivals = shadow.persistIntervals(b);
    if (a_ivals.empty() || b_ivals.empty())
        return true;

    Epoch a_max_begin = 0;
    AddrRange a_worst;
    for (const auto &[range, ival] : a_ivals) {
        if (ival.begin >= a_max_begin) {
            a_max_begin = ival.begin;
            a_worst = range;
        }
    }
    Epoch b_min_begin = kInfEpoch;
    AddrRange b_worst;
    for (const auto &[range, ival] : b_ivals) {
        if (ival.begin <= b_min_begin) {
            b_min_begin = ival.begin;
            b_worst = range;
        }
    }

    if (a_max_begin < b_min_begin)
        return true;

    if (why) {
        *why = "write to " + a_worst.str() + " (epoch " +
               std::to_string(a_max_begin) +
               ") is not separated by a fence from write to " +
               b_worst.str() + " (epoch " + std::to_string(b_min_begin) +
               ")";
    }
    return false;
}

} // namespace pmtest::core
