#include "core/hops_model.hh"

namespace pmtest::core
{

bool
HopsModel::checkOrderedBefore(const AddrRange &a, const AddrRange &b,
                              const ShadowMemory &shadow,
                              std::string *why) const
{
    // HOPS fences already enforce persist order, so ordering holds as
    // soon as every A-interval *starts* strictly before every
    // B-interval (paper §5.2) — durability of A is not required.
    const auto a_ivals = shadow.persistIntervals(a);
    const auto b_ivals = shadow.persistIntervals(b);
    if (a_ivals.empty() || b_ivals.empty())
        return true;

    Epoch a_max_begin = 0;
    AddrRange a_worst;
    for (const auto &[range, ival] : a_ivals) {
        if (ival.begin >= a_max_begin) {
            a_max_begin = ival.begin;
            a_worst = range;
        }
    }
    Epoch b_min_begin = kInfEpoch;
    AddrRange b_worst;
    for (const auto &[range, ival] : b_ivals) {
        if (ival.begin <= b_min_begin) {
            b_min_begin = ival.begin;
            b_worst = range;
        }
    }

    if (a_max_begin < b_min_begin)
        return true;

    if (why) {
        *why = "write to " + a_worst.str() + " (epoch " +
               std::to_string(a_max_begin) +
               ") is not separated by a fence from write to " +
               b_worst.str() + " (epoch " + std::to_string(b_min_begin) +
               ")";
    }
    return false;
}

} // namespace pmtest::core
