/**
 * @file
 * The x86 persistency model (paper §4.4): writes open persist
 * intervals, clwb/clflushopt/clflush open flush intervals, sfence
 * advances the epoch and closes the intervals of fenced writebacks.
 *
 * apply() — the per-operation hot path — is defined inline so the
 * engine's model-templated checking kernel inlines the whole per-op
 * switch (the class is final, so calls through a concretely-typed
 * reference devirtualize). The cold checker rules stay in the .cc.
 */

#ifndef PMTEST_CORE_X86_MODEL_HH
#define PMTEST_CORE_X86_MODEL_HH

#include "core/persistency_model.hh"

namespace pmtest::core
{

/** Checking rules for the strict x86 persistency model. */
class X86Model final : public PersistencyModel
{
  public:
    const char *name() const override { return "x86"; }

    void
    apply(const PmOp &op, ShadowMemory &shadow, Report &report,
          size_t op_index) override
    {
        switch (op.type) {
          case OpType::Write:
            shadow.recordWrite(AddrRange(op.addr, op.size));
            break;

          case OpType::Clwb:
          case OpType::ClflushOpt:
          case OpType::Clflush: {
            const AddrRange range(op.addr, op.size);
            reportClwbWarns(shadow.scanClwb(range), op, report,
                            op_index);
            shadow.recordClwb(range);
            break;
          }

          case OpType::Sfence:
            shadow.bumpTimestamp();
            shadow.completePendingFlushes();
            break;

          case OpType::Ofence:
          case OpType::Dfence:
          case OpType::DcCvap:
          case OpType::Dsb:
            reportMalformed(op, report, op_index, name());
            break;

          default:
            // Transactional events and checkers are handled by the
            // engine.
            break;
        }
    }

    bool checkOrderedBefore(const AddrRange &a, const AddrRange &b,
                            const ShadowMemory &shadow,
                            std::string *why) const override;

    OpType repairFlushOp() const override { return OpType::Clwb; }
    OpType repairFenceOp() const override { return OpType::Sfence; }

  private:
    /** Emit the clwb performance WARNs derived from a pre-update scan
     *  (cold path; out of line). */
    static void reportClwbWarns(const ClwbScan &scan, const PmOp &op,
                                Report &report, size_t op_index);
};

} // namespace pmtest::core

#endif // PMTEST_CORE_X86_MODEL_HH
