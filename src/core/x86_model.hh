/**
 * @file
 * The x86 persistency model (paper §4.4): writes open persist
 * intervals, clwb/clflushopt/clflush open flush intervals, sfence
 * advances the epoch and closes the intervals of fenced writebacks.
 */

#ifndef PMTEST_CORE_X86_MODEL_HH
#define PMTEST_CORE_X86_MODEL_HH

#include "core/persistency_model.hh"

namespace pmtest::core
{

/** Checking rules for the strict x86 persistency model. */
class X86Model : public PersistencyModel
{
  public:
    const char *name() const override { return "x86"; }

    void apply(const PmOp &op, ShadowMemory &shadow, Report &report,
               size_t op_index) override;

    bool checkOrderedBefore(const AddrRange &a, const AddrRange &b,
                            const ShadowMemory &shadow,
                            std::string *why) const override;
};

} // namespace pmtest::core

#endif // PMTEST_CORE_X86_MODEL_HH
