#include "core/engine.hh"

#include <algorithm>
#include <type_traits>

#include "core/arm_model.hh"
#include "core/hops_model.hh"
#include "core/x86_model.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace pmtest::core
{

void
Engine::TraceState::reset()
{
    shadow.reset();
    exclusions.clear();
    txDepth = 0;
    logTree.clear();
    txCheckActive = false;
    txWrites.clear();
}

Engine::Engine(ModelKind kind, Dispatch dispatch)
    : kind_(kind), dispatch_(dispatch), model_(makeModel(kind))
{
    if (!model_)
        fatal("Engine: unknown persistency model");
}

Report
Engine::check(const Trace &trace)
{
    // Per-trace, not per-op: the span (and its stage histogram) costs
    // two clock reads per *trace*, leaving the op loop untouched.
    obs::SpanScope span(obs::Stage::EngineCheck);
    obs::count(obs::Counter::TracesChecked);
    obs::count(obs::Counter::OpsChecked, trace.size());

    Report report(trace.id(), trace.fileId());
    state_.reset();

    // Select the model rules once per trace. The templated kernels
    // call through a concretely-typed reference to a final class, so
    // the per-op apply() devirtualizes and inlines; the Virtual mode
    // instantiates the same kernel against the base class, retaining
    // the classic one-virtual-call-per-op path for the ablation.
    if (dispatch_ == Dispatch::Virtual) {
        runTrace(*model_, trace, report);
    } else {
        switch (kind_) {
          case ModelKind::X86:
            runTrace(static_cast<X86Model &>(*model_), trace, report);
            break;
          case ModelKind::Hops:
            runTrace(static_cast<HopsModel &>(*model_), trace, report);
            break;
          case ModelKind::Arm:
            runTrace(static_cast<ArmModel &>(*model_), trace, report);
            break;
        }
    }

    if (state_.txDepth > 0) {
        Finding f;
        f.severity = Severity::Fail;
        f.kind = FindingKind::UnmatchedTx;
        f.message = "trace ends with " +
                    std::to_string(state_.txDepth) +
                    " unterminated transaction(s)";
        f.traceId = trace.id();
        f.opIndex = trace.size();
        f.hint.action = FixAction::InsertTxEnd;
        f.hint.opIndex = trace.size();
        f.hint.count = static_cast<uint32_t>(state_.txDepth);
        report.add(std::move(f));
    }

    tracesChecked_++;
    report.stampIdentity();
    // The report owns the trace's string arena from here on, so its
    // finding locations outlive the trace and any reader/loader.
    report.holdArena(trace.arena());
    return report;
}

template <typename M>
void
Engine::runTrace(M &model, const Trace &trace, Report &report)
{
    const auto &ops = trace.ops();

    // Batched write runs are valid precisely because every concrete
    // model applies OpType::Write as shadow.recordWrite(range) and
    // nothing else; the polymorphic baseline keeps the pure per-op
    // loop so Dispatch::Virtual remains the oracle the batched path
    // is verified against (tests/core/kernel_equivalence_test.cc).
    if (dispatch_ == Dispatch::Templated &&
        !std::is_same_v<M, PersistencyModel>) {
        size_t i = 0;
        while (i < ops.size()) {
            if (ops[i].type == OpType::Write) {
                i = runWriteRun(trace, i, state_, report);
                continue;
            }
            handleOp(model, ops[i], i, state_, report);
            opsProcessed_++;
            i++;
        }
        return;
    }

    for (size_t i = 0; i < ops.size(); i++) {
        handleOp(model, ops[i], i, state_, report);
        opsProcessed_++;
    }
}

size_t
Engine::runWriteRun(const Trace &trace, size_t i, TraceState &state,
                    Report &report)
{
    const auto &ops = trace.ops();
    writeBatch_.clear();
    uint64_t lo = 0, hi = 0; // bounding box of the batch
    while (i < ops.size() && ops[i].type == OpType::Write) {
        const PmOp &op = ops[i];
        const size_t index = i;
        opsProcessed_++;
        i++;

        const AddrRange range(op.addr, op.size);
        // Matches the per-op path: an empty or fully-excluded write
        // is skipped before any check or shadow update (covers() is
        // vacuously true on empty ranges).
        if (excluded(state, range))
            continue;
        preWriteChecks(op, range, index, state, report);

        if (!writeBatch_.empty() && range.addr < hi &&
            range.end() > lo) {
            // The bounding box overlaps; if any batched member truly
            // overlaps, application order matters — flush first.
            for (const AddrRange &b : writeBatch_) {
                if (range.addr < b.end() && range.end() > b.addr) {
                    flushWriteBatch(state);
                    break;
                }
            }
        }
        if (writeBatch_.empty()) {
            lo = range.addr;
            hi = range.end();
        } else {
            lo = std::min(lo, range.addr);
            hi = std::max(hi, range.end());
        }
        writeBatch_.push_back(range);
        if (writeBatch_.size() >= kWriteBatchMax)
            flushWriteBatch(state);
    }
    flushWriteBatch(state);
    return i;
}

void
Engine::flushWriteBatch(TraceState &state)
{
    if (writeBatch_.empty())
        return;
    if (writeBatch_.size() == 1) {
        state.shadow.recordWrite(writeBatch_[0]);
    } else {
        // Members are pairwise disjoint (overlap forces an early
        // flush above), so sorting cannot change the outcome — only
        // the cost of applying it.
        std::sort(writeBatch_.begin(), writeBatch_.end(),
                  [](const AddrRange &a, const AddrRange &b) {
                      return a.addr < b.addr;
                  });
        state.shadow.recordWriteBatch(writeBatch_.data(),
                                      writeBatch_.size());
    }
    writeBatch_.clear();
}

void
Engine::preWriteChecks(const PmOp &op, const AddrRange &range,
                       size_t index, TraceState &state, Report &report)
{
    // Transaction-aware rule (§5.1.1): inside a transaction, a
    // modified persistent object must have been backed up first.
    if (state.txDepth > 0 && !state.logTree.covers(range)) {
        Finding f;
        f.severity = Severity::Fail;
        f.kind = FindingKind::MissingLog;
        f.message = "write to " + range.str() +
                    " inside a transaction without a log backup "
                    "(missing TX_ADD)";
        f.loc = op.loc;
        f.opIndex = index;
        f.hint.action = FixAction::InsertTxAdd;
        f.hint.addr = range.addr;
        f.hint.size = range.size;
        f.hint.opIndex = index;
        report.add(std::move(f));
    }
    if (state.txCheckActive)
        state.txWrites.emplace_back(range, op.loc);
}

bool
Engine::excluded(const TraceState &state, const AddrRange &range)
{
    return state.exclusions.covers(range);
}

template <typename M>
void
Engine::handleOp(M &model, const PmOp &op, size_t index,
                 TraceState &state, Report &report)
{
    switch (op.type) {
      case OpType::Exclude:
        state.exclusions.assign(AddrRange(op.addr, op.size), true);
        return;
      case OpType::Include:
        state.exclusions.erase(AddrRange(op.addr, op.size));
        return;

      case OpType::TxBegin:
      case OpType::TxEnd:
      case OpType::TxAdd:
        handleTxEvent(op, index, state, report);
        return;

      case OpType::CheckIsPersist:
      case OpType::CheckIsOrderedBefore:
      case OpType::TxCheckStart:
      case OpType::TxCheckEnd:
        handleChecker(model, op, index, state, report);
        return;

      default:
        break;
    }

    // Hardware PM operation. Skip ranges removed from the testing
    // scope; fences always apply (they have no range).
    const AddrRange range(op.addr, op.size);
    const bool ranged = op.type == OpType::Write ||
                        op.type == OpType::Clwb ||
                        op.type == OpType::ClflushOpt ||
                        op.type == OpType::Clflush;
    if (ranged && excluded(state, range))
        return;

    if (op.type == OpType::Write)
        preWriteChecks(op, range, index, state, report);

    model.apply(op, state.shadow, report, index);
}

void
Engine::handleTxEvent(const PmOp &op, size_t index, TraceState &state,
                      Report &report)
{
    switch (op.type) {
      case OpType::TxBegin:
        state.txDepth++;
        return;

      case OpType::TxEnd:
        if (state.txDepth == 0) {
            Finding f;
            f.severity = Severity::Fail;
            f.kind = FindingKind::Malformed;
            f.message = "TX_END without a matching TX_BEGIN";
            f.loc = op.loc;
            f.opIndex = index;
            report.add(std::move(f));
            return;
        }
        state.txDepth--;
        if (state.txDepth == 0) {
            // Outermost commit: undo log entries are retired.
            state.logTree.clear();
        }
        return;

      case OpType::TxAdd: {
        const AddrRange range(op.addr, op.size);
        if (excluded(state, range))
            return;
        if (state.txDepth == 0) {
            Finding f;
            f.severity = Severity::Fail;
            f.kind = FindingKind::Malformed;
            f.message = "TX_ADD of " + range.str() +
                        " outside any transaction";
            f.loc = op.loc;
            f.opIndex = index;
            report.add(std::move(f));
            return;
        }
        if (state.logTree.covers(range)) {
            // §5.1.2: logging the same object twice is a performance
            // bug — the second snapshot is pure overhead.
            Finding f;
            f.severity = Severity::Warn;
            f.kind = FindingKind::DuplicateLog;
            f.message = "object " + range.str() +
                        " is already in the undo log of this "
                        "transaction";
            f.loc = op.loc;
            f.opIndex = index;
            f.hint.action = FixAction::DeleteTxAdd;
            f.hint.addr = range.addr;
            f.hint.size = range.size;
            f.hint.opIndex = index;
            report.add(std::move(f));
        }
        state.logTree.insert(range, op.loc);
        return;
      }

      default:
        panic("handleTxEvent: unexpected op");
    }
}

template <typename M>
void
Engine::handleChecker(const M &model, const PmOp &op, size_t index,
                      TraceState &state, Report &report)
{
    switch (op.type) {
      case OpType::CheckIsPersist: {
        const AddrRange range(op.addr, op.size);
        if (excluded(state, range))
            return;
        std::string why;
        if (!model.checkPersisted(range, state.shadow, &why)) {
            Finding f;
            f.severity = Severity::Fail;
            f.kind = FindingKind::NotPersisted;
            f.message = why;
            f.loc = op.loc;
            f.opIndex = index;
            f.hint = model.durabilityHint(range, state.shadow, index);
            report.add(std::move(f));
        }
        return;
      }

      case OpType::CheckIsOrderedBefore: {
        const AddrRange a(op.addr, op.size);
        const AddrRange b(op.addrB, op.sizeB);
        if (excluded(state, a) || excluded(state, b))
            return;
        std::string why;
        if (!model.checkOrderedBefore(a, b, state.shadow, &why)) {
            Finding f;
            f.severity = Severity::Fail;
            f.kind = FindingKind::NotOrdered;
            f.message = why;
            f.loc = op.loc;
            f.opIndex = index;
            f.hint = model.orderingHint(a, b, state.shadow, index);
            report.add(std::move(f));
        }
        return;
      }

      case OpType::TxCheckStart:
        state.txCheckActive = true;
        state.txWrites.clear();
        return;

      case OpType::TxCheckEnd: {
        if (!state.txCheckActive) {
            Finding f;
            f.severity = Severity::Fail;
            f.kind = FindingKind::Malformed;
            f.message = "TX_CHECKER_END without TX_CHECKER_START";
            f.loc = op.loc;
            f.opIndex = index;
            report.add(std::move(f));
            return;
        }
        state.txCheckActive = false;

        if (state.txDepth > 0) {
            Finding f;
            f.severity = Severity::Fail;
            f.kind = FindingKind::UnmatchedTx;
            f.message = "transaction still open at TX_CHECKER_END";
            f.loc = op.loc;
            f.opIndex = index;
            f.hint.action = FixAction::InsertTxEnd;
            f.hint.opIndex = index;
            f.hint.count = static_cast<uint32_t>(state.txDepth);
            report.add(std::move(f));
        }

        // Auto-injected isPersist for every object modified inside the
        // checked region (§5.1.1, "check incomplete transactions").
        for (const auto &[range, write_loc] : state.txWrites) {
            if (excluded(state, range))
                continue;
            std::string why;
            if (!model.checkPersisted(range, state.shadow, &why)) {
                Finding f;
                f.severity = Severity::Fail;
                f.kind = FindingKind::IncompleteTx;
                f.message = "update not persisted when the transaction "
                            "ended: " +
                            why + " (write at " + write_loc.str() + ")";
                f.loc = op.loc;
                f.opIndex = index;
                f.hint = model.durabilityHint(range, state.shadow,
                                              index);
                report.add(std::move(f));
            }
        }
        state.txWrites.clear();
        return;
      }

      default:
        panic("handleChecker: unexpected op");
    }
}

// Instantiate the kernel for the built-in models and for the
// polymorphic baseline (Dispatch::Virtual). check() selects among
// these once per trace.
template void Engine::runTrace<X86Model>(X86Model &, const Trace &,
                                         Report &);
template void Engine::runTrace<HopsModel>(HopsModel &, const Trace &,
                                          Report &);
template void Engine::runTrace<ArmModel>(ArmModel &, const Trace &,
                                         Report &);
template void Engine::runTrace<PersistencyModel>(PersistencyModel &,
                                                 const Trace &,
                                                 Report &);

} // namespace pmtest::core
