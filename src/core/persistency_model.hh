/**
 * @file
 * The persistency-model interface: the set of *checking rules* (paper
 * §4.4, §5.2) that define how hardware PM operations update the shadow
 * memory and how the two low-level checkers are validated. PMTest's
 * flexibility claim rests on this seam — supporting a new persistency
 * model means implementing this interface (compare X86Model and
 * HopsModel).
 */

#ifndef PMTEST_CORE_PERSISTENCY_MODEL_HH
#define PMTEST_CORE_PERSISTENCY_MODEL_HH

#include <memory>
#include <string>

#include "core/report.hh"
#include "core/shadow_memory.hh"
#include "trace/pm_op.hh"

namespace pmtest::core
{

/** Which built-in model to instantiate. */
enum class ModelKind
{
    X86,  ///< strict x86: write / clwb / sfence
    Hops, ///< HOPS: write / ofence / dfence
    Arm,  ///< ARMv8.2: write / DC CVAP / DSB
};

/** Checking rules for one persistency model. */
class PersistencyModel
{
  public:
    virtual ~PersistencyModel() = default;

    /** Model name for reports. */
    virtual const char *name() const = 0;

    /**
     * Apply one hardware PM operation to the shadow memory,
     * emitting WARN findings (performance bugs) or Malformed findings
     * (operations the model does not define) into @p report.
     */
    virtual void apply(const PmOp &op, ShadowMemory &shadow,
                       Report &report, size_t op_index) = 0;

    /**
     * The isPersist rule: whether everything written in @p range is
     * guaranteed persistent at the current epoch. Identical for the
     * built-in models; kept virtual for models with different
     * durability semantics.
     * @param why on failure, receives a human-readable reason.
     */
    virtual bool
    checkPersisted(const AddrRange &range, const ShadowMemory &shadow,
                   std::string *why) const;

    /**
     * The isOrderedBefore rule: whether every write in @p a is
     * guaranteed to persist before any write in @p b.
     * @param why on failure, receives a human-readable reason.
     */
    virtual bool
    checkOrderedBefore(const AddrRange &a, const AddrRange &b,
                       const ShadowMemory &shadow,
                       std::string *why) const = 0;

    /** The writeback op this model's repairs insert. */
    virtual OpType repairFlushOp() const = 0;

    /** The completing-fence op this model's repairs insert. */
    virtual OpType repairFenceOp() const = 0;

    /**
     * Repair proposal for a failed checkPersisted over @p range at
     * the checker op @p op_index. Default (strict models): a fence
     * alone when every pending byte already has a writeback in
     * flight, otherwise writeback + fence over the unflushed span —
     * inserted immediately before the checker.
     */
    virtual FixHint durabilityHint(const AddrRange &range,
                                   const ShadowMemory &shadow,
                                   size_t op_index) const;

    /**
     * Repair proposal for a failed checkOrderedBefore(@p a, @p b) at
     * the checker op @p op_index. Default (strict models): make A
     * durable before B's first write — writeback of A plus a fence,
     * placed by the patcher in front of that write (withFlush lets
     * the patcher skip/retire writebacks as needed). Epoch-based
     * models (HOPS) override with a fence-only repair.
     */
    virtual FixHint orderingHint(const AddrRange &a, const AddrRange &b,
                                 const ShadowMemory &shadow,
                                 size_t op_index) const;

  protected:
    /** Helper for apply(): record a Malformed finding. */
    static void
    reportMalformed(const PmOp &op, Report &report, size_t op_index,
                    const char *model_name);
};

/** Instantiate a built-in model. */
std::unique_ptr<PersistencyModel> makeModel(ModelKind kind);

} // namespace pmtest::core

#endif // PMTEST_CORE_PERSISTENCY_MODEL_HH
