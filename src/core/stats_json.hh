/**
 * @file
 * The one JSON rendering of the dispatch/ingest statistics. Every
 * machine-readable consumer — `pmtest_check --metrics-json`,
 * `bench_fig12 --json`, `bench_ingest` — goes through these writers,
 * so the three outputs share one schema and cannot drift apart.
 */

#ifndef PMTEST_CORE_STATS_JSON_HH
#define PMTEST_CORE_STATS_JSON_HH

#include "core/engine_pool.hh"
#include "util/json.hh"

namespace pmtest::core
{

/**
 * Append @p stats as a JSON object: pool totals, an "ingest" object
 * when an ingest stage ran, and a per-worker array. The writer must
 * be positioned where an object value is legal.
 */
void writePoolStatsJson(JsonWriter &w, const PoolStats &stats);

/** Append @p stats as a JSON object (the "ingest" sub-object). */
void writeIngestStatsJson(JsonWriter &w, const IngestStats &stats);

} // namespace pmtest::core

#endif // PMTEST_CORE_STATS_JSON_HH
