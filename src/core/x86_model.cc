#include "core/x86_model.hh"

namespace pmtest::core
{

void
X86Model::reportClwbWarns(const ClwbScan &scan, const PmOp &op,
                          Report &report, size_t op_index)
{
    const AddrRange range(op.addr, op.size);
    Finding f;
    f.severity = Severity::Warn;
    f.loc = op.loc;
    f.opIndex = op_index;
    // Every clwb performance bug has the same mechanical repair:
    // drop the writeback.
    f.hint.action = FixAction::DeleteFlush;
    f.hint.addr = op.addr;
    f.hint.size = op.size;
    f.hint.opIndex = op_index;
    f.hint.flushOp = op.type;
    if (scan.redundant) {
        f.kind = FindingKind::RedundantFlush;
        f.message = "writeback of " + range.str() +
                    " duplicates an earlier writeback that has not "
                    "been fenced yet";
        report.add(std::move(f));
    } else if (scan.unmodified) {
        f.kind = FindingKind::UnnecessaryFlush;
        f.message = "writeback of " + range.str() +
                    " targets data never modified in this trace";
        report.add(std::move(f));
    } else if (scan.alreadyClean) {
        f.kind = FindingKind::UnnecessaryFlush;
        f.message = "writeback of " + range.str() +
                    " targets data that is already persistent";
        report.add(std::move(f));
    }
}

bool
X86Model::checkOrderedBefore(const AddrRange &a, const AddrRange &b,
                             const ShadowMemory &shadow,
                             std::string *why) const
{
    // All persist intervals of A must be guaranteed complete before
    // any persist interval of B may begin:
    //   max(end of A's intervals) <= min(begin of B's intervals).
    // Overlapping intervals fail this, as does A persisting entirely
    // after B. Ranges with no writes pass vacuously.
    const auto a_ivals = shadow.persistIntervals(a);
    const auto b_ivals = shadow.persistIntervals(b);
    if (a_ivals.empty() || b_ivals.empty())
        return true;

    Epoch a_max_end = 0;
    AddrRange a_worst;
    for (const auto &[range, ival] : a_ivals) {
        if (ival.end >= a_max_end) {
            a_max_end = ival.end;
            a_worst = range;
        }
    }
    Epoch b_min_begin = kInfEpoch;
    AddrRange b_worst;
    for (const auto &[range, ival] : b_ivals) {
        if (ival.begin <= b_min_begin) {
            b_min_begin = ival.begin;
            b_worst = range;
        }
    }

    if (a_max_end <= b_min_begin)
        return true;

    if (why) {
        *why = "persist interval of " + a_worst.str() + " (ends " +
               (a_max_end == kInfEpoch ? std::string("never")
                                       : std::to_string(a_max_end)) +
               ") is not guaranteed before that of " + b_worst.str() +
               " (may begin at epoch " + std::to_string(b_min_begin) +
               ")";
    }
    return false;
}

} // namespace pmtest::core
