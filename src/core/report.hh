/**
 * @file
 * Testing results. The engine emits FAIL findings for crash
 * consistency bugs (a checker condition that the trace cannot
 * guarantee) and WARN findings for performance bugs (redundant
 * writebacks, duplicated logs), each carrying the offending file:line
 * — the output format of the paper's Fig. 6.
 */

#ifndef PMTEST_CORE_REPORT_HH
#define PMTEST_CORE_REPORT_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "trace/fix_hint.hh"
#include "util/source_location.hh"

namespace pmtest::core
{

/** Finding severity. */
enum class Severity : uint8_t
{
    Warn, ///< performance bug; program is correct but wasteful
    Fail, ///< crash consistency bug
};

/** What kind of rule produced the finding. */
enum class FindingKind : uint8_t
{
    NotPersisted,       ///< isPersist failed
    NotOrdered,         ///< isOrderedBefore failed
    MissingLog,         ///< TX write without a prior TX_ADD backup
    IncompleteTx,       ///< updates not persisted when the TX ended
    UnmatchedTx,        ///< TX_CHECKER region closed with open TX
    RedundantFlush,     ///< writeback issued twice without a fence
    UnnecessaryFlush,   ///< writeback of unmodified data
    DuplicateLog,       ///< same object logged twice in one TX
    Malformed,          ///< structurally invalid trace (API misuse)
};

/** Human-readable name for a finding kind. */
const char *findingKindName(FindingKind kind);

/** One WARN/FAIL record. */
struct Finding
{
    Severity severity = Severity::Fail;
    FindingKind kind = FindingKind::NotPersisted;
    std::string message;
    SourceLocation loc{};
    uint64_t traceId = 0;
    uint32_t fileId = 0; ///< which input source the trace came from
    size_t opIndex = 0; ///< index of the offending op within the trace

    /**
     * Machine-readable repair proposal, synthesized by the emitting
     * check when it knows the mechanical fix (hint.valid() is false
     * for Malformed and other unfixable findings). Only trustworthy
     * once core::verifyHints has set hint.verified by replaying the
     * patched trace.
     */
    FixHint hint{};

    /** Render as "FAIL(kind) message @ file:line [fN:tM:opK]". */
    std::string str() const;
};

/** The result of checking one trace. */
class Report
{
  public:
    /** The arena type findings' location strings may point into. */
    using Arena = std::shared_ptr<const std::deque<std::string>>;

    Report() = default;
    explicit Report(uint64_t trace_id, uint32_t file_id = 0)
        : traceId_(trace_id), fileId_(file_id)
    {
    }

    /** Record a finding (counts synthesized fix hints as it goes). */
    void add(Finding finding);

    /** All findings, in detection order. */
    const std::vector<Finding> &findings() const { return findings_; }

    /** Mutable findings, for the hint-verification pass. */
    std::vector<Finding> &mutableFindings() { return findings_; }

    /** Number of FAIL findings. */
    size_t failCount() const;

    /** Number of WARN findings. */
    size_t warnCount() const;

    /** True when no FAIL findings were recorded. */
    bool passed() const { return failCount() == 0; }

    /** True when nothing at all was recorded. */
    bool clean() const { return findings_.empty(); }

    /** Id of the checked trace. */
    uint64_t traceId() const { return traceId_; }

    /** Id of the input source the checked trace came from. */
    uint32_t fileId() const { return fileId_; }

    /** Merge another report's findings (and held arenas) into this. */
    void merge(const Report &other);

    /**
     * Set every finding's (fileId, traceId) to this report's
     * identity. The checking kernels only record opIndex (they do
     * not know the trace identity); the engine stamps it once per
     * checked trace so merged reports can be canonicalized.
     */
    void stampIdentity();

    /**
     * Share ownership of the string arena findings' source-location
     * file names point into. A Report that holds its traces' arenas
     * is self-contained: it stays valid after the trace, the reader
     * and every other pipeline object are gone. Null arenas (live
     * captures point at static __FILE__ literals) are ignored.
     */
    void holdArena(Arena arena);

    /** Arenas this report keeps alive (merge concatenates them). */
    const std::vector<Arena> &arenas() const { return arenas_; }

    /**
     * Reorder findings into the canonical order: stable sort by
     * (fileId, traceId, opIndex). Per-trace findings stay in
     * detection order (each trace is checked whole by one engine), so
     * a report merged from parallel workers over any shard/source
     * assignment canonicalizes to the exact byte sequence the serial,
     * submission-ordered path produces — the determinism contract of
     * the parallel offline-check pipeline.
     */
    void canonicalize();

    /** Multi-line dump of all findings. */
    std::string str() const;

    /**
     * One aggregated line per distinct (severity, kind, location):
     * long runs repeat the same finding thousands of times (e.g. a
     * buggy insert path hit per operation); the summary is what a
     * developer actually reads.
     */
    struct SummaryLine
    {
        Severity severity;
        FindingKind kind;
        SourceLocation loc;
        size_t count;
        std::string firstMessage;
    };

    /** Deduplicated findings, most frequent first. */
    std::vector<SummaryLine> summary() const;

    /** Render the summary. */
    std::string summaryStr() const;

  private:
    uint64_t traceId_ = 0;
    uint32_t fileId_ = 0;
    std::vector<Finding> findings_;
    std::vector<Arena> arenas_; ///< keeps finding locations alive
};

} // namespace pmtest::core

#endif // PMTEST_CORE_REPORT_HH
