/**
 * @file
 * The HOPS persistency model (paper §5.2): the lightweight ofence
 * orders writes without forcing them to PM; the heavier dfence both
 * orders and persists. There are no flush intervals — HOPS hardware
 * tracks writebacks itself.
 */

#ifndef PMTEST_CORE_HOPS_MODEL_HH
#define PMTEST_CORE_HOPS_MODEL_HH

#include "core/persistency_model.hh"

namespace pmtest::core
{

/** Checking rules for the HOPS relaxed persistency model. */
class HopsModel : public PersistencyModel
{
  public:
    const char *name() const override { return "hops"; }

    void apply(const PmOp &op, ShadowMemory &shadow, Report &report,
               size_t op_index) override;

    bool checkOrderedBefore(const AddrRange &a, const AddrRange &b,
                            const ShadowMemory &shadow,
                            std::string *why) const override;
};

} // namespace pmtest::core

#endif // PMTEST_CORE_HOPS_MODEL_HH
