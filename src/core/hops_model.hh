/**
 * @file
 * The HOPS persistency model (paper §5.2): the lightweight ofence
 * orders writes without forcing them to PM; the heavier dfence both
 * orders and persists. There are no flush intervals — HOPS hardware
 * tracks writebacks itself.
 */

#ifndef PMTEST_CORE_HOPS_MODEL_HH
#define PMTEST_CORE_HOPS_MODEL_HH

#include "core/persistency_model.hh"

namespace pmtest::core
{

/**
 * Checking rules for the HOPS relaxed persistency model.
 *
 * apply() is defined inline and the class is final so the engine's
 * model-templated kernel devirtualizes and inlines the per-op switch.
 */
class HopsModel final : public PersistencyModel
{
  public:
    const char *name() const override { return "hops"; }

    void
    apply(const PmOp &op, ShadowMemory &shadow, Report &report,
          size_t op_index) override
    {
        switch (op.type) {
          case OpType::Write:
            shadow.recordWrite(AddrRange(op.addr, op.size));
            break;

          case OpType::Ofence:
            // Orders persists without enforcing durability: writes
            // before and after the ofence get distinct interval
            // begins.
            shadow.bumpTimestamp();
            break;

          case OpType::Dfence:
            // Orders and persists: everything written so far is
            // durable once the dfence completes.
            shadow.bumpTimestamp();
            shadow.completeAllWrites();
            break;

          case OpType::Clwb:
          case OpType::ClflushOpt:
          case OpType::Clflush:
          case OpType::Sfence:
          case OpType::DcCvap:
          case OpType::Dsb:
            // HOPS replaces explicit writebacks and fences entirely.
            reportMalformed(op, report, op_index, name());
            break;

          default:
            // Transactional events and checkers are handled by the
            // engine.
            break;
        }
    }

    bool checkOrderedBefore(const AddrRange &a, const AddrRange &b,
                            const ShadowMemory &shadow,
                            std::string *why) const override;

    // HOPS has no explicit writeback; the dfence stands in wherever a
    // generic repair would insert one (never reached — both hint
    // synthesizers are overridden below).
    OpType repairFlushOp() const override { return OpType::Dfence; }
    OpType repairFenceOp() const override { return OpType::Dfence; }

    /** Durability repair: a dfence in front of the checker. */
    FixHint durabilityHint(const AddrRange &range,
                           const ShadowMemory &shadow,
                           size_t op_index) const override;

    /** Ordering repair: an ofence in front of B's first write. */
    FixHint orderingHint(const AddrRange &a, const AddrRange &b,
                         const ShadowMemory &shadow,
                         size_t op_index) const override;
};

} // namespace pmtest::core

#endif // PMTEST_CORE_HOPS_MODEL_HH
