/**
 * @file
 * An augmented self-balancing (AVL) interval tree storing possibly
 * overlapping half-open intervals [lo, hi). Each node is augmented
 * with the maximum end in its subtree, giving O(log n + k) overlap
 * queries. The checking engine uses it for the log tree that tracks
 * TX_ADD'ed ranges (paper §5.1.1: "the checking engine maintains
 * another interval tree, log tree").
 */

#ifndef PMTEST_CORE_INTERVAL_TREE_HH
#define PMTEST_CORE_INTERVAL_TREE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/interval.hh"

namespace pmtest::core
{

/**
 * Interval tree over [lo, hi) intervals with attached values.
 * Duplicate and overlapping intervals may coexist.
 */
template <typename V>
class IntervalTree
{
  public:
    /** Insert interval [range.addr, range.end()) with @p value. */
    void
    insert(const AddrRange &range, V value)
    {
        root_ = insertNode(std::move(root_), range, std::move(value));
        size_++;
    }

    /** Remove everything. */
    void
    clear()
    {
        root_.reset();
        size_ = 0;
    }

    /** Number of stored intervals. */
    size_t size() const { return size_; }

    /** True when empty. */
    bool empty() const { return size_ == 0; }

    /** Whether any stored interval overlaps @p range. */
    bool
    anyOverlap(const AddrRange &range) const
    {
        return findOverlap(root_.get(), range) != nullptr;
    }

    /**
     * Invoke @p fn(range, value) for every stored interval overlapping
     * @p range.
     */
    void
    forEachOverlap(const AddrRange &range,
                   const std::function<void(const AddrRange &, const V &)>
                       &fn) const
    {
        walkOverlaps(root_.get(), range, fn);
    }

    /**
     * Whether the union of stored intervals fully covers @p range.
     * Sweeps the overlapping intervals during an in-order walk (the
     * tree is keyed by interval start, so the walk already visits them
     * in address order): no per-query allocation, no sort, and the
     * walk stops as soon as a gap is proven or the range is covered.
     * Overlapping log entries are handled correctly by the sweep.
     */
    bool
    covers(const AddrRange &range) const
    {
        if (range.empty())
            return true;
        uint64_t pos = range.addr;
        bool gap = false;
        coverSweep(root_.get(), range, pos, gap);
        return !gap && pos >= range.end();
    }

  private:
    struct Node
    {
        AddrRange range;
        V value;
        uint64_t maxEnd;
        int height = 1;
        std::unique_ptr<Node> left;
        std::unique_ptr<Node> right;

        Node(const AddrRange &r, V v)
            : range(r), value(std::move(v)), maxEnd(r.end())
        {
        }
    };

    using NodePtr = std::unique_ptr<Node>;

    static int heightOf(const Node *n) { return n ? n->height : 0; }

    static uint64_t maxEndOf(const Node *n) { return n ? n->maxEnd : 0; }

    static void
    update(Node *n)
    {
        n->height = 1 + std::max(heightOf(n->left.get()),
                                 heightOf(n->right.get()));
        n->maxEnd = std::max({n->range.end(), maxEndOf(n->left.get()),
                              maxEndOf(n->right.get())});
    }

    static NodePtr
    rotateRight(NodePtr n)
    {
        NodePtr l = std::move(n->left);
        n->left = std::move(l->right);
        update(n.get());
        l->right = std::move(n);
        update(l.get());
        return l;
    }

    static NodePtr
    rotateLeft(NodePtr n)
    {
        NodePtr r = std::move(n->right);
        n->right = std::move(r->left);
        update(n.get());
        r->left = std::move(n);
        update(r.get());
        return r;
    }

    static NodePtr
    rebalance(NodePtr n)
    {
        update(n.get());
        const int balance =
            heightOf(n->left.get()) - heightOf(n->right.get());
        if (balance > 1) {
            if (heightOf(n->left->left.get()) <
                heightOf(n->left->right.get())) {
                n->left = rotateLeft(std::move(n->left));
            }
            return rotateRight(std::move(n));
        }
        if (balance < -1) {
            if (heightOf(n->right->right.get()) <
                heightOf(n->right->left.get())) {
                n->right = rotateRight(std::move(n->right));
            }
            return rotateLeft(std::move(n));
        }
        return n;
    }

    static NodePtr
    insertNode(NodePtr n, const AddrRange &range, V value)
    {
        if (!n)
            return std::make_unique<Node>(range, std::move(value));
        if (range.addr < n->range.addr) {
            n->left = insertNode(std::move(n->left), range,
                                 std::move(value));
        } else {
            n->right = insertNode(std::move(n->right), range,
                                  std::move(value));
        }
        return rebalance(std::move(n));
    }

    static const Node *
    findOverlap(const Node *n, const AddrRange &range)
    {
        while (n) {
            if (n->range.overlaps(range))
                return n;
            if (n->left && n->left->maxEnd > range.addr) {
                n = n->left.get();
            } else {
                n = n->right.get();
            }
        }
        return nullptr;
    }

    /**
     * In-order coverage sweep: advance @p pos over overlapping
     * intervals, setting @p gap when an interval starts beyond the
     * covered prefix. Stops descending once the verdict is decided.
     */
    static void
    coverSweep(const Node *n, const AddrRange &range, uint64_t &pos,
               bool &gap)
    {
        if (!n || gap || pos >= range.end())
            return; // verdict already decided
        if (maxEndOf(n) <= range.addr)
            return; // nothing in this subtree reaches the range
        coverSweep(n->left.get(), range, pos, gap);
        if (gap || pos >= range.end())
            return;
        if (n->range.overlaps(range)) {
            if (n->range.addr > pos) {
                gap = true;
                return;
            }
            pos = std::max(pos, n->range.end());
        }
        if (n->range.addr < range.end())
            coverSweep(n->right.get(), range, pos, gap);
    }

    static void
    walkOverlaps(const Node *n, const AddrRange &range,
                 const std::function<void(const AddrRange &, const V &)>
                     &fn)
    {
        if (!n || range.empty())
            return;
        if (maxEndOf(n) <= range.addr)
            return; // nothing in this subtree ends beyond range start
        walkOverlaps(n->left.get(), range, fn);
        if (n->range.overlaps(range))
            fn(n->range, n->value);
        if (n->range.addr < range.end())
            walkOverlaps(n->right.get(), range, fn);
    }

    NodePtr root_;
    size_t size_ = 0;
};

} // namespace pmtest::core

#endif // PMTEST_CORE_INTERVAL_TREE_HH
