/**
 * @file
 * The one ingest implementation: a decoder thread team pulls batches
 * of decoded traces from a TraceSource — a whole v2 file, a byte-
 * range shard, a multi-file set, a legacy v1 stream, or the live
 * in-process capture sink — and feeds the engine pool. Decode of
 * trace N+1 overlaps checking of trace N, and the pool's bounded
 * queues backpressure the decoders, so peak memory is the in-flight
 * window — not the whole input, as with the old sequential path.
 *
 * Every trace arrives identity-stamped (fileId, traceId) with its
 * string arena attached, so the merged report canonicalizes to the
 * same bytes regardless of how sources, shards and decoder threads
 * interleaved.
 *
 * Used by pmtest_check (--decoders=N, --shards=N, multi-file),
 * examples/offline_check, bench_ingest, and the determinism tests.
 */

#ifndef PMTEST_CORE_TRACE_INGEST_HH
#define PMTEST_CORE_TRACE_INGEST_HH

#include "core/engine_pool.hh"
#include "trace/trace_source.hh"

namespace pmtest::core
{

/**
 * Live progress of one ingest() call, safe to read from any thread
 * while the decoders run. The metrics publisher samples it to tell
 * "source still has traces" from "decoders finished" — the EOF and
 * stall-watchdog signals the drained TraceSource alone can't give.
 */
struct IngestProgress
{
    std::atomic<uint64_t> tracesDecoded{0};
    std::atomic<bool> done{false}; ///< ingest() has returned
};

/** Knobs for ingest(). */
struct IngestOptions
{
    /**
     * Decoder→engine placement policy for multi-source inputs
     * (shards or file sets).
     */
    enum class Affinity
    {
        /**
         * Pinned when it can help: a multi-source input and at
         * least two pool workers. Otherwise shared.
         */
        Auto,
        /** All decoders pull one shared cursor; round-robin submit. */
        Shared,
        /**
         * Each child source is drained by one decoder and submitted
         * to one fixed worker slot (child index modulo workers), so
         * a shard's traces keep hitting an engine whose TraceState
         * is warm for that shard's address pattern. Falls back to
         * Shared for single sources and inline pools.
         */
        Pinned,
    };

    /** Decoder threads (>= 1). */
    size_t decoders = 1;
    /** Traces submitted to the pool per submitBatch() call. */
    size_t batch = 8;
    /** Placement policy (canonical reports are identical in all). */
    Affinity affinity = Affinity::Auto;
    /** Optional live-progress mirror (not owned; may be null). */
    IngestProgress *progress = nullptr;
};

/**
 * Drain @p source on @p options.decoders threads and submit every
 * trace to @p pool. Returns once all traces are *submitted* (call
 * pool.results() to also wait for checking). Fills @p ingest with
 * decode/stall counters for the PoolStats snapshot.
 *
 * @return false when the source reports an error (the first error is
 *         copied to @p error when provided; remaining work is
 *         abandoned, already-submitted traces still drain).
 */
bool ingest(TraceSource &source, EnginePool &pool,
            const IngestOptions &options, IngestStats *ingest,
            SourceError *error = nullptr);

} // namespace pmtest::core

#endif // PMTEST_CORE_TRACE_INGEST_HH
