/**
 * @file
 * The pipelined offline-check ingest stage: a decoder thread team
 * pulls trace indices from a shared cursor, decodes each trace from
 * its framed slice of a mapped v2 file (TraceFileReader), and feeds
 * the engine pool in batches. Decode of trace N+1 overlaps checking
 * of trace N, and the pool's bounded queues backpressure the
 * decoders, so peak memory is the in-flight window — not the whole
 * file, as with the sequential loadTraces path.
 *
 * Used by pmtest_check (--ingest=mmap --decoders=N), bench_ingest,
 * and the ingest determinism tests.
 */

#ifndef PMTEST_CORE_TRACE_INGEST_HH
#define PMTEST_CORE_TRACE_INGEST_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/engine_pool.hh"
#include "trace/trace_reader.hh"

namespace pmtest::core
{

/** Knobs for ingestTraces(). */
struct IngestOptions
{
    /** Decoder threads (>= 1). */
    size_t decoders = 1;
    /** Traces submitted to the pool per submitBatch() call. */
    size_t batch = 8;
};

/**
 * Keeps decoded traces' file-name strings alive: findings hold
 * const char* into these arenas, so the sink must outlive any Report
 * derived from the ingested traces. The op buffers themselves are
 * freed as soon as each trace is checked; only the (tiny) interned
 * file names persist here.
 */
using ArenaSink =
    std::vector<std::shared_ptr<std::deque<std::string>>>;

/**
 * Decode every trace in @p reader on @p options.decoders threads and
 * submit them to @p pool. Returns once all traces are *submitted*
 * (call pool.results() to also wait for checking). Fills @p ingest
 * with decode/stall counters for the PoolStats snapshot.
 *
 * @return false when any trace fails to decode (the remaining work
 *         is abandoned; already-submitted traces still drain).
 */
bool ingestTraces(const TraceFileReader &reader, EnginePool &pool,
                  const IngestOptions &options, IngestStats *ingest,
                  ArenaSink *arenas);

} // namespace pmtest::core

#endif // PMTEST_CORE_TRACE_INGEST_HH
