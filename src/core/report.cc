#include "core/report.hh"

#include <algorithm>
#include <map>
#include <tuple>

#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace pmtest::core
{

const char *
findingKindName(FindingKind kind)
{
    // No default and no fallthrough return: -Wswitch makes the
    // compiler reject any FindingKind this switch does not name, so a
    // new kind can never render as "?".
    switch (kind) {
      case FindingKind::NotPersisted: return "not-persisted";
      case FindingKind::NotOrdered: return "not-ordered";
      case FindingKind::MissingLog: return "missing-log";
      case FindingKind::IncompleteTx: return "incomplete-tx";
      case FindingKind::UnmatchedTx: return "unmatched-tx";
      case FindingKind::RedundantFlush: return "redundant-flush";
      case FindingKind::UnnecessaryFlush: return "unnecessary-flush";
      case FindingKind::DuplicateLog: return "duplicate-log";
      case FindingKind::Malformed: return "malformed-trace";
    }
    panic("unknown FindingKind");
}

std::string
Finding::str() const
{
    std::string out = severity == Severity::Fail ? "FAIL" : "WARN";
    out += "(";
    out += findingKindName(kind);
    out += ") ";
    out += message;
    out += " @ ";
    out += loc.str();
    // The (fileId, traceId, opIndex) identity: without it, findings
    // from multi-file or sharded runs cannot be attributed to an
    // input trace.
    out += " [f";
    out += std::to_string(fileId);
    out += ":t";
    out += std::to_string(traceId);
    out += ":op";
    out += std::to_string(opIndex);
    out += "]";
    return out;
}

void
Report::add(Finding finding)
{
    if (finding.hint.valid())
        obs::count(obs::Counter::HintsSynthesized);
    findings_.push_back(std::move(finding));
}

size_t
Report::failCount() const
{
    size_t n = 0;
    for (const auto &f : findings_)
        if (f.severity == Severity::Fail)
            n++;
    return n;
}

size_t
Report::warnCount() const
{
    size_t n = 0;
    for (const auto &f : findings_)
        if (f.severity == Severity::Warn)
            n++;
    return n;
}

void
Report::merge(const Report &other)
{
    findings_.insert(findings_.end(), other.findings().begin(),
                     other.findings().end());
    for (const auto &arena : other.arenas_)
        holdArena(arena);
}

void
Report::stampIdentity()
{
    for (auto &f : findings_) {
        f.traceId = traceId_;
        f.fileId = fileId_;
    }
}

void
Report::holdArena(Arena arena)
{
    if (!arena)
        return;
    // Consecutive findings usually come from the same trace; skipping
    // the immediate duplicate keeps the common case O(1) without a
    // set. Occasional repeats are harmless (shared_ptr copies).
    if (!arenas_.empty() && arenas_.back() == arena)
        return;
    arenas_.push_back(std::move(arena));
}

void
Report::canonicalize()
{
    obs::SpanScope span(obs::Stage::ReportCanonicalize);
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.fileId != b.fileId)
                             return a.fileId < b.fileId;
                         if (a.traceId != b.traceId)
                             return a.traceId < b.traceId;
                         return a.opIndex < b.opIndex;
                     });
}

std::string
Report::str() const
{
    std::string out = "report for trace #" + std::to_string(traceId_) +
                      ": " + std::to_string(failCount()) + " FAIL, " +
                      std::to_string(warnCount()) + " WARN\n";
    for (const auto &f : findings_) {
        out += "  ";
        out += f.str();
        out += '\n';
    }
    return out;
}

std::vector<Report::SummaryLine>
Report::summary() const
{
    // Key: (severity, kind, file, line). File names come from
    // __FILE__ literals or a trace arena; compare by content so
    // findings from reloaded traces group with live ones.
    using Key = std::tuple<int, int, std::string, uint32_t>;
    std::map<Key, SummaryLine> lines;
    for (const auto &f : findings_) {
        const Key key{static_cast<int>(f.severity),
                      static_cast<int>(f.kind),
                      f.loc.valid() ? f.loc.file : "", f.loc.line};
        auto it = lines.find(key);
        if (it == lines.end()) {
            lines.emplace(key, SummaryLine{f.severity, f.kind, f.loc,
                                           1, f.message});
        } else {
            it->second.count++;
        }
    }

    std::vector<SummaryLine> out;
    out.reserve(lines.size());
    for (auto &[key, line] : lines)
        out.push_back(std::move(line));
    std::sort(out.begin(), out.end(),
              [](const SummaryLine &a, const SummaryLine &b) {
                  if (a.severity != b.severity)
                      return a.severity == Severity::Fail;
                  return a.count > b.count;
              });
    return out;
}

std::string
Report::summaryStr() const
{
    const auto lines = summary();
    std::string out = "summary: " + std::to_string(failCount()) +
                      " FAIL, " + std::to_string(warnCount()) +
                      " WARN across " + std::to_string(lines.size()) +
                      " distinct sites\n";
    for (const auto &line : lines) {
        out += "  ";
        out += line.severity == Severity::Fail ? "FAIL" : "WARN";
        out += "(";
        out += findingKindName(line.kind);
        out += ") x";
        out += std::to_string(line.count);
        out += " @ ";
        out += line.loc.str();
        out += " — ";
        out += line.firstMessage;
        out += '\n';
    }
    return out;
}

} // namespace pmtest::core
