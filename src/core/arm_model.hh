/**
 * @file
 * The ARMv8.2 persistency model (paper §2.1: "ARM implements the
 * DC CVAP instruction that writes back data to the persistence").
 * Structurally the strict model of x86 with different primitives:
 * `DC CVAP` cleans a range to the point of persistence (like clwb),
 * and `DSB` orders and completes outstanding cleans (like sfence).
 * Added as the third built-in model to exercise the §5.2 extension
 * seam beyond the two models the paper ships.
 */

#ifndef PMTEST_CORE_ARM_MODEL_HH
#define PMTEST_CORE_ARM_MODEL_HH

#include "core/persistency_model.hh"

namespace pmtest::core
{

/**
 * Checking rules for the ARMv8.2 persistency model.
 *
 * apply() is defined inline and the class is final so the engine's
 * model-templated kernel devirtualizes and inlines the per-op switch;
 * the DC CVAP WARN reporting (cold path) stays out of line.
 */
class ArmModel final : public PersistencyModel
{
  public:
    const char *name() const override { return "arm"; }

    void
    apply(const PmOp &op, ShadowMemory &shadow, Report &report,
          size_t op_index) override
    {
        switch (op.type) {
          case OpType::Write:
            shadow.recordWrite(AddrRange(op.addr, op.size));
            break;

          case OpType::DcCvap: {
            // Clean-to-persistence: same interval semantics as clwb,
            // including the performance-bug WARN rules.
            const AddrRange range(op.addr, op.size);
            reportCvapWarns(shadow.scanClwb(range), op, report,
                            op_index);
            shadow.recordClwb(range);
            break;
          }

          case OpType::Dsb:
            shadow.bumpTimestamp();
            shadow.completePendingFlushes();
            break;

          case OpType::Clwb:
          case OpType::ClflushOpt:
          case OpType::Clflush:
          case OpType::Sfence:
          case OpType::Ofence:
          case OpType::Dfence:
            reportMalformed(op, report, op_index, name());
            break;

          default:
            // Transactional events and checkers are handled by the
            // engine.
            break;
        }
    }

    bool checkOrderedBefore(const AddrRange &a, const AddrRange &b,
                            const ShadowMemory &shadow,
                            std::string *why) const override;

    OpType repairFlushOp() const override { return OpType::DcCvap; }
    OpType repairFenceOp() const override { return OpType::Dsb; }

  private:
    /** Emit the DC CVAP performance WARNs (cold path; out of line). */
    static void reportCvapWarns(const ClwbScan &scan, const PmOp &op,
                                Report &report, size_t op_index);
};

} // namespace pmtest::core

#endif // PMTEST_CORE_ARM_MODEL_HH
