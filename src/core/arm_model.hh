/**
 * @file
 * The ARMv8.2 persistency model (paper §2.1: "ARM implements the
 * DC CVAP instruction that writes back data to the persistence").
 * Structurally the strict model of x86 with different primitives:
 * `DC CVAP` cleans a range to the point of persistence (like clwb),
 * and `DSB` orders and completes outstanding cleans (like sfence).
 * Added as the third built-in model to exercise the §5.2 extension
 * seam beyond the two models the paper ships.
 */

#ifndef PMTEST_CORE_ARM_MODEL_HH
#define PMTEST_CORE_ARM_MODEL_HH

#include "core/persistency_model.hh"

namespace pmtest::core
{

/** Checking rules for the ARMv8.2 persistency model. */
class ArmModel : public PersistencyModel
{
  public:
    const char *name() const override { return "arm"; }

    void apply(const PmOp &op, ShadowMemory &shadow, Report &report,
               size_t op_index) override;

    bool checkOrderedBefore(const AddrRange &a, const AddrRange &b,
                            const ShadowMemory &shadow,
                            std::string *why) const override;
};

} // namespace pmtest::core

#endif // PMTEST_CORE_ARM_MODEL_HH
