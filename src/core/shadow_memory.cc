#include "core/shadow_memory.hh"

#include <algorithm>

namespace pmtest::core
{

void
ShadowMemory::recordWrite(const AddrRange &range)
{
    RangeStatus status;
    status.hasPersist = true;
    status.persist = Interval::open(timestamp_);
    map_.assign(range, status);
    openWrites_.assign(range, 1);
}

void
ShadowMemory::recordWriteBatch(const AddrRange *ranges, size_t n)
{
    if (n == 0)
        return;
    if (n == 1) {
        recordWrite(ranges[0]);
        return;
    }
    RangeStatus status;
    status.hasPersist = true;
    status.persist = Interval::open(timestamp_);
    map_.assignBatch(ranges, n, status);
    openWrites_.assignBatch(ranges, n, uint8_t{1});
}

ClwbScan
ShadowMemory::scanClwb(const AddrRange &range) const
{
    ClwbScan scan;
    bool any_persist = false;
    bool any_open_persist = false;
    bool any_pending_new_data = false;

    map_.forEachOverlap(range, [&](const auto &entry) {
        const RangeStatus &s = entry.value;
        if (s.hasFlush && s.flush.isOpen())
            scan.redundant = true;
        if (s.hasPersist) {
            any_persist = true;
            if (s.persist.isOpen()) {
                any_open_persist = true;
                if (!s.hasFlush || !s.flush.isOpen())
                    any_pending_new_data = true;
            }
        }
    });

    scan.unmodified = !any_persist;
    scan.alreadyClean =
        any_persist && !any_open_persist && !any_pending_new_data;
    return scan;
}

void
ShadowMemory::recordClwb(const AddrRange &range)
{
    // Open a flush interval over the range while preserving persist
    // intervals. Subranges with no prior status get a flush-only entry
    // so double flushes of unmodified data are still detectable.
    std::vector<std::pair<AddrRange, RangeStatus>> updated;
    uint64_t pos = range.addr;
    map_.forEachOverlap(range, [&](const auto &entry) {
        if (entry.start > pos) {
            RangeStatus gap;
            gap.hasFlush = true;
            gap.flush = Interval::open(timestamp_);
            updated.emplace_back(AddrRange(pos, entry.start - pos), gap);
        }
        RangeStatus s = entry.value;
        s.hasFlush = true;
        s.flush = Interval::open(timestamp_);
        updated.emplace_back(
            AddrRange(entry.start, entry.end - entry.start), s);
        pos = entry.end;
    });
    if (pos < range.end()) {
        RangeStatus gap;
        gap.hasFlush = true;
        gap.flush = Interval::open(timestamp_);
        updated.emplace_back(AddrRange(pos, range.end() - pos), gap);
    }
    for (auto &[r, s] : updated)
        map_.assign(r, std::move(s));

    pendingFlushes_.assign(range, 1);
}

void
ShadowMemory::completePendingFlushes()
{
    // The pending set is sorted and disjoint by map invariant, so the
    // whole completion is one monotone batched walk over map_ rather
    // than a binary search per pending entry. An entry spanning two
    // pending ranges is revisited, exactly as the per-entry walk did;
    // the open-flush guard makes the second visit a no-op either way.
    scratch_.clear();
    pendingFlushes_.forEach([&](const auto &pending) {
        scratch_.push_back(
            AddrRange(pending.start, pending.end - pending.start));
    });
    map_.forEachOverlapBatchMut(
        scratch_.data(), scratch_.size(),
        [&](size_t, uint64_t, uint64_t, RangeStatus &s) {
            if (!s.hasFlush || !s.flush.isOpen())
                return; // a later write invalidated this flush
            s.flush.close(timestamp_);
            if (s.hasPersist)
                s.persist.close(timestamp_);
        });
    pendingFlushes_.clear();
}

void
ShadowMemory::completeAllWrites()
{
    scratch_.clear();
    openWrites_.forEach([&](const auto &open) {
        scratch_.push_back(
            AddrRange(open.start, open.end - open.start));
    });
    map_.forEachOverlapBatchMut(
        scratch_.data(), scratch_.size(),
        [&](size_t, uint64_t, uint64_t, RangeStatus &s) {
            if (s.hasPersist)
                s.persist.close(timestamp_);
        });
    openWrites_.clear();
}

bool
ShadowMemory::allPersisted(const AddrRange &range,
                           AddrRange *first_open) const
{
    bool ok = true;
    map_.forEachOverlap(range, [&](const auto &entry) {
        if (!ok)
            return;
        const RangeStatus &s = entry.value;
        if (s.hasPersist && !s.persist.closedBy(timestamp_)) {
            ok = false;
            if (first_open) {
                *first_open =
                    AddrRange(entry.start, entry.end - entry.start);
            }
        }
    });
    return ok;
}

std::vector<std::pair<AddrRange, Interval>>
ShadowMemory::persistIntervals(const AddrRange &range) const
{
    std::vector<std::pair<AddrRange, Interval>> out;
    map_.forEachOverlap(range, [&](const auto &entry) {
        if (entry.value.hasPersist) {
            out.emplace_back(AddrRange(entry.start,
                                       entry.end - entry.start),
                             entry.value.persist);
        }
    });
    return out;
}

AddrRange
ShadowMemory::unflushedSpan(const AddrRange &range) const
{
    uint64_t lo = 0, hi = 0;
    bool found = false;
    map_.forEachOverlap(range, [&](const auto &entry) {
        const RangeStatus &s = entry.value;
        if (!s.hasPersist || !s.persist.isOpen())
            return;
        if (s.hasFlush && s.flush.isOpen())
            return; // writeback already in flight; a fence closes it
        const uint64_t start = std::max(entry.start, range.addr);
        const uint64_t end = std::min(entry.end, range.end());
        if (!found) {
            lo = start;
            hi = end;
            found = true;
        } else {
            lo = std::min(lo, start);
            hi = std::max(hi, end);
        }
    });
    return found ? AddrRange(lo, hi - lo) : AddrRange();
}

bool
ShadowMemory::anyWrite(const AddrRange &range) const
{
    bool found = false;
    map_.forEachOverlap(range, [&](const auto &entry) {
        if (entry.value.hasPersist)
            found = true;
    });
    return found;
}

} // namespace pmtest::core
