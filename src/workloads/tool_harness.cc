#include "workloads/tool_harness.hh"

#include <memory>

#include "baseline/pmemcheck.hh"
#include "util/logging.hh"
#include "util/clock.hh"

namespace pmtest::workloads
{

const char *
toolName(Tool tool)
{
    switch (tool) {
      case Tool::Native: return "native";
      case Tool::PMTest: return "pmtest";
      case Tool::PMTestNoCheck: return "pmtest-nocheck";
      case Tool::PMTestInline: return "pmtest-inline";
      case Tool::Pmemcheck: return "pmemcheck";
    }
    return "?";
}

RunResult
runUnderTool(Tool tool,
             const std::function<void(bool checkers)> &workload,
             size_t workers)
{
    return runStaged(
        tool,
        [&](bool checkers) {
            return [&workload, checkers] { workload(checkers); };
        },
        workers);
}

RunResult
runStaged(Tool tool, const StagedWorkload &workload, size_t workers)
{
    RunResult result;
    const bool checkers =
        tool != Tool::Native && tool != Tool::PMTestNoCheck;

    if (tool == Tool::Native) {
        const auto run = workload(false);
        Timer timer;
        run();
        result.seconds = timer.elapsedSec();
        return result;
    }

    // Findings are expected in fault-injection runs; keep the console
    // quiet and collect them structurally instead.
    ScopedLogSilencer quiet;

    Config config;
    config.workers = tool == Tool::PMTestInline ? 0 : workers;
    pmtestInit(config);

    std::unique_ptr<baseline::Pmemcheck> pmemcheck;
    if (tool == Tool::Pmemcheck) {
        pmemcheck = std::make_unique<baseline::Pmemcheck>();
        pmtestSetTraceSink([&](Trace &&trace) {
            pmemcheck->onTrace(trace);
        });
        baseline::setDbiActive(true);
    }

    pmtestThreadInit();
    const auto run = workload(checkers); // setup: untimed, untracked
    pmtestStart();

    Timer timer;
    run();
    pmtestSendTrace();
    pmtestGetResult();
    result.seconds = timer.elapsedSec();

    result.opsRecorded = pmtestOpsRecorded();
    result.traces = pmtestTracesSubmitted();
    result.poolStats = pmtestPoolStats();

    core::Report report;
    if (tool == Tool::Pmemcheck) {
        baseline::setDbiActive(false);
        report = pmemcheck->finish();
        pmtestSetTraceSink(nullptr);
    } else {
        report = pmtestResults();
    }
    result.failCount = report.failCount();
    result.warnCount = report.warnCount();

    pmtestEnd();
    pmtestExit();
    return result;
}

} // namespace pmtest::workloads
