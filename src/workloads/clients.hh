/**
 * @file
 * Load-generating clients for the real workloads (paper Table 4):
 * Memslap (5% SET / 95% GET), YCSB workload A (50% update / 50%
 * read) for memcached-lite; an LRU-stress client for redis-lite;
 * Filebench- and OLTP-style generators for the mini PMFS. All
 * generators are deterministic from their seed.
 */

#ifndef PMTEST_WORKLOADS_CLIENTS_HH
#define PMTEST_WORKLOADS_CLIENTS_HH

#include <cstdint>

#include "pmfs/pmfs.hh"
#include "workloads/memcached_lite.hh"
#include "workloads/redis_lite.hh"

namespace pmtest::workloads
{

/** Common client parameters. */
struct ClientConfig
{
    size_t ops = 1000;      ///< operations per client
    size_t keySpace = 1000; ///< distinct keys
    size_t valueSize = 64;  ///< value bytes
    uint64_t seed = 7;
    /**
     * Per-request CPU work rounds, standing in for the request
     * parsing/dispatch/serialization the real servers do around
     * every operation (the reason the paper's real workloads are
     * "less intensive in accessing PM" than the microbenchmarks).
     * 0 disables it.
     */
    size_t requestWork = 24;
};

/**
 * Burn the per-request CPU cost: @p rounds checksum passes over the
 * payload. Runs identically under every tool, so it only affects the
 * denominator of slowdown ratios, as the real servers' non-PM work
 * does.
 */
uint64_t simulateRequestWork(const void *payload, size_t size,
                             size_t rounds);

/** Memslap-style load: 5% SET, 95% GET (paper Table 4). */
void runMemslapClient(MemcachedLite &server, const ClientConfig &config);

/** YCSB-A-style load: 50% update, 50% read (paper Table 4). */
void runYcsbClient(MemcachedLite &server, const ClientConfig &config);

/** Redis LRU stress: SET-heavy churn over a large key space. */
void runRedisLruClient(RedisLite &server, const ClientConfig &config);

/** Filebench-style file server mix: create/write/read/delete. */
void runFilebenchClient(pmfs::Pmfs &fs, const ClientConfig &config,
                        uint32_t client_id);

/** OLTP-style load: read-modify-write of records in a table file. */
void runOltpClient(pmfs::Pmfs &fs, const ClientConfig &config,
                   uint32_t client_id);

} // namespace pmtest::workloads

#endif // PMTEST_WORKLOADS_CLIENTS_HH
