#include "workloads/redis_lite.hh"

#include <cstring>

namespace pmtest::workloads
{

RedisLite::RedisLite(txlib::ObjPool &pool, size_t capacity,
                     size_t nbuckets)
    : pool_(pool), root_(pool.root<Root>()), capacity_(capacity)
{
    if (root_->buckets == nullptr) {
        txlib::TxScope tx(pool_, PMTEST_HERE);
        pool_.txAdd(root_, sizeof(Root), PMTEST_HERE);
        const size_t bytes = nbuckets * sizeof(Node *);
        auto **buckets =
            static_cast<Node **>(pool_.txAllocRaw(bytes, PMTEST_HERE));
        std::vector<uint8_t> zeros(bytes, 0);
        pool_.txWrite(buckets, zeros.data(), bytes, PMTEST_HERE);
        pool_.txAssign(&root_->buckets, buckets, PMTEST_HERE);
        pool_.txAssign(&root_->nbuckets, uint64_t(nbuckets),
                       PMTEST_HERE);
    }
    pmtestSendTrace();
}

uint64_t
RedisLite::hashKey(const std::string &key)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : key) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

RedisLite::Node *
RedisLite::find(const std::string &key, Node ***slot_out)
{
    const uint64_t h = hashKey(key);
    Node **slot = &root_->buckets[h % root_->nbuckets];
    while (*slot) {
        Node *node = *slot;
        if (node->keyHash == h && node->keyLen == key.size() &&
            std::memcmp(node->keyBytes, key.data(), key.size()) == 0) {
            if (slot_out)
                *slot_out = slot;
            return node;
        }
        slot = &node->next;
    }
    if (slot_out)
        *slot_out = slot;
    return nullptr;
}

void
RedisLite::removeSlot(Node **slot)
{
    Node *node = *slot;
    txlib::TxScope tx(pool_, PMTEST_HERE);
    pool_.txAdd(slot, sizeof(Node *), PMTEST_HERE);
    pool_.txAssign(slot, node->next, PMTEST_HERE);
    pool_.txAdd(&root_->count, sizeof(root_->count), PMTEST_HERE);
    pool_.txAssign(&root_->count, root_->count - 1, PMTEST_HERE);
    tx.commit();
    pool_.freeRaw(node->keyBytes);
    pool_.freeRaw(node->valueBytes);
    pool_.freeRaw(node);
}

void
RedisLite::evictOne()
{
    // Redis-style approximated LRU: probe buckets from a random
    // start, collect a handful of candidates, evict the stalest.
    Node **victim_slot = nullptr;
    uint64_t oldest = UINT64_MAX;
    size_t sampled = 0;
    const uint64_t start = rng_.below(root_->nbuckets);
    for (uint64_t probe = 0;
         probe < root_->nbuckets && sampled < 5; probe++) {
        Node **slot =
            &root_->buckets[(start + probe) % root_->nbuckets];
        while (*slot) {
            if ((*slot)->lruClock < oldest) {
                oldest = (*slot)->lruClock;
                victim_slot = slot;
            }
            sampled++;
            slot = &(*slot)->next;
        }
    }
    if (victim_slot) {
        removeSlot(victim_slot);
        evictions_++;
    }
}

void
RedisLite::set(const std::string &key, const std::string &value)
{
    Node **slot;
    Node *existing = find(key, &slot);

    if (!existing && root_->count >= capacity_)
        evictOne();

    if (emitCheckers)
        PMTEST_TX_CHECKER_START();
    {
        txlib::TxScope tx(pool_, PMTEST_HERE);
        if (existing) {
            char *buf = static_cast<char *>(
                pool_.txAllocRaw(value.size(), PMTEST_HERE));
            pool_.txWrite(buf, value.data(), value.size(),
                          PMTEST_HERE);
            char *old = existing->valueBytes;
            pool_.txAdd(existing, sizeof(Node), PMTEST_HERE);
            pool_.txAssign(&existing->valueBytes, buf, PMTEST_HERE);
            pool_.txAssign(&existing->valueLen,
                           static_cast<uint32_t>(value.size()),
                           PMTEST_HERE);
            pool_.freeRaw(old);
        } else {
            // Eviction may have restructured this chain; re-find the
            // insertion slot inside the transaction.
            find(key, &slot);
            auto *node = pool_.txAlloc<Node>(PMTEST_HERE);
            char *kbuf = static_cast<char *>(
                pool_.txAllocRaw(key.size(), PMTEST_HERE));
            char *vbuf = static_cast<char *>(
                pool_.txAllocRaw(value.size(), PMTEST_HERE));
            pool_.txWrite(kbuf, key.data(), key.size(), PMTEST_HERE);
            pool_.txWrite(vbuf, value.data(), value.size(),
                          PMTEST_HERE);
            Node init{hashKey(key),
                      static_cast<uint32_t>(key.size()),
                      static_cast<uint32_t>(value.size()),
                      kbuf,
                      vbuf,
                      *slot,
                      clock_++};
            pool_.txWrite(node, &init, sizeof(init), PMTEST_HERE);
            pool_.txAdd(slot, sizeof(Node *), PMTEST_HERE);
            pool_.txAssign(slot, node, PMTEST_HERE);
            pool_.txAdd(&root_->count, sizeof(root_->count),
                        PMTEST_HERE);
            pool_.txAssign(&root_->count, root_->count + 1,
                           PMTEST_HERE);
        }
    }
    if (emitCheckers)
        PMTEST_TX_CHECKER_END();
    pmtestSendTrace();
}

bool
RedisLite::get(const std::string &key, std::string *out)
{
    Node *node = find(key, nullptr);
    if (!node)
        return false;
    // The access stamp is advisory (like Redis's lru field): a plain
    // volatile update, not part of the crash-consistent state.
    node->lruClock = clock_++;
    if (out)
        out->assign(node->valueBytes, node->valueLen);
    return true;
}

bool
RedisLite::del(const std::string &key)
{
    Node **slot;
    Node *node = find(key, &slot);
    if (!node)
        return false;
    if (emitCheckers)
        PMTEST_TX_CHECKER_START();
    removeSlot(slot);
    if (emitCheckers)
        PMTEST_TX_CHECKER_END();
    pmtestSendTrace();
    return true;
}

size_t
RedisLite::count() const
{
    return root_->count;
}

} // namespace pmtest::workloads
