#include "workloads/microbench.hh"

#include "pmds/btree_map.hh"
#include "pmds/ctree_map.hh"
#include "pmds/hashmap_atomic.hh"
#include "pmds/hashmap_tx.hh"
#include "pmds/rbtree_map.hh"
#include "util/random.hh"

namespace pmtest::workloads
{

size_t
microbenchPoolSize(const MicrobenchConfig &config)
{
    // Value + node + undo-log slack per insertion, plus fixed costs
    // (log region, bucket arrays) and headroom.
    return config.insertions * (config.valueSize + 512) + (8u << 20);
}

namespace
{

/** Enable the structure-level checker annotations where supported. */
void
setEmitCheckers(pmds::PmMap &map, pmds::MapKind kind, bool on)
{
    switch (kind) {
      case pmds::MapKind::Ctree:
        static_cast<pmds::CtreeMap &>(map).emitCheckers = on;
        break;
      case pmds::MapKind::Btree:
        static_cast<pmds::BtreeMap &>(map).emitCheckers = on;
        break;
      case pmds::MapKind::Rbtree:
        static_cast<pmds::RbtreeMap &>(map).emitCheckers = on;
        break;
      case pmds::MapKind::HashmapTx:
        static_cast<pmds::HashmapTx &>(map).emitCheckers = on;
        break;
      case pmds::MapKind::HashmapAtomic:
        static_cast<pmds::HashmapAtomic &>(map).emitCheckers = on;
        break;
    }
}

} // namespace

RunResult
runMicrobench(const MicrobenchConfig &config, Tool tool)
{
    // Build the pool and structure outside the timed region; the
    // paper times the insertion phase.
    txlib::ObjPool pool(microbenchPoolSize(config));
    auto map = pmds::makeMap(config.kind, pool);

    std::vector<uint8_t> value(config.valueSize, 0xab);
    Rng rng(config.seed);
    std::vector<uint64_t> keys;
    keys.reserve(config.insertions);
    for (size_t i = 0; i < config.insertions; i++)
        keys.push_back(rng.next());

    return runUnderTool(
        tool,
        [&](bool checkers) {
            setEmitCheckers(*map, config.kind, checkers);
            for (uint64_t key : keys)
                map->insert(key, value.data(), value.size());
        },
        config.workers);
}

} // namespace pmtest::workloads
