/**
 * @file
 * The Fig. 10 microbenchmarks: N insertions into each of the five
 * persistent structures (each insertion is one transaction/trace),
 * sweeping the transaction size (value bytes) like the paper's
 * 64–4096 B axis.
 */

#ifndef PMTEST_WORKLOADS_MICROBENCH_HH
#define PMTEST_WORKLOADS_MICROBENCH_HH

#include "pmds/pm_map.hh"
#include "workloads/tool_harness.hh"

namespace pmtest::workloads
{

/** Microbenchmark parameters. */
struct MicrobenchConfig
{
    pmds::MapKind kind = pmds::MapKind::Ctree;
    size_t insertions = 1000;
    size_t valueSize = 64; ///< the paper's "transaction size"
    uint64_t seed = 42;
    size_t workers = 1; ///< PMTest engine workers
};

/**
 * Run the insertion microbenchmark under @p tool.
 * A fresh pool and structure are built per run (outside the timed
 * region); keys are drawn deterministically from the seed.
 */
RunResult runMicrobench(const MicrobenchConfig &config, Tool tool);

/**
 * Pool size needed for a run (insertions * (value + metadata) plus
 * slack); exposed so tests can mirror the sizing.
 */
size_t microbenchPoolSize(const MicrobenchConfig &config);

} // namespace pmtest::workloads

#endif // PMTEST_WORKLOADS_MICROBENCH_HH
