#include "workloads/memcached_lite.hh"

#include <cstring>

namespace pmtest::workloads
{

MemcachedLite::MemcachedLite(mnemosyne::Region &region, size_t nbuckets)
    : region_(region), root_(region.root<Root>())
{
    if (root_->buckets == nullptr) {
        const size_t bytes = nbuckets * sizeof(Node *);
        auto **buckets = static_cast<Node **>(region_.alloc(bytes));
        std::memset(buckets, 0, bytes);
        // Publish the empty index durably (one-time setup).
        Root init{buckets, nbuckets, 0};
        region_.persist(root_, &init, sizeof(init), PMTEST_HERE);
    }
}

uint64_t
MemcachedLite::hashKey(const std::string &key)
{
    // FNV-1a.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : key) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

MemcachedLite::Node *
MemcachedLite::findLocked(const std::string &key,
                          Node ***slot_out) const
{
    const uint64_t h = hashKey(key);
    Node **slot = &root_->buckets[h % root_->nbuckets];
    while (*slot) {
        Node *node = *slot;
        if (node->keyHash == h && node->keyLen == key.size() &&
            std::memcmp(node->keyBytes, key.data(), key.size()) == 0) {
            if (slot_out)
                *slot_out = slot;
            return node;
        }
        slot = &node->next;
    }
    if (slot_out)
        *slot_out = slot;
    return nullptr;
}

void
MemcachedLite::set(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(mutex_);

    Node **slot;
    Node *existing = findLocked(key, &slot);

    if (existing) {
        // Update: stage a new value buffer and swap the pointer, all
        // through the redo log.
        char *buf = static_cast<char *>(region_.alloc(value.size()));
        region_.txBegin(PMTEST_HERE);
        region_.logAppend(buf, value.data(), value.size(),
                          PMTEST_HERE);
        char *old = existing->valueBytes;
        region_.logAssign(&existing->valueBytes, buf, PMTEST_HERE);
        region_.logAssign(&existing->valueLen,
                          static_cast<uint32_t>(value.size()),
                          PMTEST_HERE);
        region_.txCommit(PMTEST_HERE);
        region_.free(old);
        pmtestSendTrace();
        return;
    }

    // Insert: every byte of the new node flows through log_append, as
    // Mnemosyne's word-based transactions require.
    auto *node = static_cast<Node *>(region_.alloc(sizeof(Node)));
    char *kbuf = static_cast<char *>(region_.alloc(key.size()));
    char *vbuf = static_cast<char *>(region_.alloc(value.size()));

    region_.txBegin(PMTEST_HERE);
    region_.logAppend(kbuf, key.data(), key.size(), PMTEST_HERE);
    region_.logAppend(vbuf, value.data(), value.size(), PMTEST_HERE);

    Node init{hashKey(key), static_cast<uint32_t>(key.size()),
              static_cast<uint32_t>(value.size()), kbuf, vbuf, *slot};
    region_.logAppend(node, &init, sizeof(init), PMTEST_HERE);
    region_.logAssign(slot, node, PMTEST_HERE);
    region_.logAssign(&root_->count, root_->count + 1, PMTEST_HERE);
    region_.txCommit(PMTEST_HERE);
    pmtestSendTrace();
}

bool
MemcachedLite::get(const std::string &key, std::string *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Node *node = findLocked(key, nullptr);
    if (!node)
        return false;
    if (out)
        out->assign(node->valueBytes, node->valueLen);
    return true;
}

bool
MemcachedLite::del(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Node **slot;
    Node *node = findLocked(key, &slot);
    if (!node)
        return false;

    region_.txBegin(PMTEST_HERE);
    region_.logAssign(slot, node->next, PMTEST_HERE);
    region_.logAssign(&root_->count, root_->count - 1, PMTEST_HERE);
    region_.txCommit(PMTEST_HERE);

    region_.free(node->keyBytes);
    region_.free(node->valueBytes);
    region_.free(node);
    pmtestSendTrace();
    return true;
}

size_t
MemcachedLite::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return root_->count;
}

} // namespace pmtest::workloads
