/**
 * @file
 * Tool harness: runs a workload closure under one of the testing
 * tools the paper compares (native / PMTest / pmemcheck stand-in) and
 * reports wall-clock time plus findings. Centralizing setup/teardown
 * keeps every benchmark's measurement loop identical, so slowdown
 * ratios are apples-to-apples.
 */

#ifndef PMTEST_WORKLOADS_TOOL_HARNESS_HH
#define PMTEST_WORKLOADS_TOOL_HARNESS_HH

#include <functional>

#include "core/api.hh"
#include "core/report.hh"

namespace pmtest::workloads
{

/** Which testing tool wraps the workload. */
enum class Tool
{
    Native,          ///< no tool: baseline time
    PMTest,          ///< PMTest with checkers (default configuration)
    PMTestNoCheck,   ///< PMTest tracking only — Fig. 10b's
                     ///< "framework" bar (checkers not annotated)
    PMTestInline,    ///< PMTest with 0 workers (decoupling ablation)
    Pmemcheck,       ///< the synchronous pmemcheck stand-in
};

/** Name for a Tool. */
const char *toolName(Tool tool);

/** Result of one harnessed run. */
struct RunResult
{
    double seconds = 0;      ///< wall-clock time of the workload
    size_t failCount = 0;    ///< FAIL findings reported by the tool
    size_t warnCount = 0;    ///< WARN findings reported by the tool
    uint64_t opsRecorded = 0;///< PM operations traced
    uint64_t traces = 0;     ///< traces submitted
    /**
     * Engine-pool dispatch snapshot taken after the drain (PMTest
     * tools only): steal counts and producer stall time explain
     * *why* a worker configuration is fast or slow.
     */
    core::PoolStats poolStats;
};

/**
 * Run @p workload under @p tool.
 *
 * The workload closure receives a flag telling it whether checker
 * annotations should be emitted (true for every tool except
 * PMTestNoCheck and Native; pmemcheck consumes isPersist checkers).
 *
 * @param workers PMTest engine workers (ignored by other tools)
 */
RunResult runUnderTool(Tool tool,
                       const std::function<void(bool checkers)> &workload,
                       size_t workers = 1);

/**
 * A workload with separate setup: `setup(checkers)` builds pools and
 * servers (untimed, untracked) and returns the measured closure.
 * Keeps large pool construction out of the slowdown ratios.
 */
using StagedWorkload =
    std::function<std::function<void()>(bool checkers)>;

/** Like runUnderTool, but only the returned closure is timed. */
RunResult runStaged(Tool tool, const StagedWorkload &workload,
                    size_t workers = 1);

} // namespace pmtest::workloads

#endif // PMTEST_WORKLOADS_TOOL_HARNESS_HH
