/**
 * @file
 * Redis-lite: the WHISPER "Redis on PMDK" workload stand-in
 * (Fig. 11). A capacity-bounded string key-value store over a txlib
 * ObjPool; when full it evicts using Redis-style approximated LRU
 * (sample a few entries, evict the least recently used). Every
 * SET/DELETE is one undo-log transaction, optionally wrapped in the
 * PMDK-style transaction checkers.
 */

#ifndef PMTEST_WORKLOADS_REDIS_LITE_HH
#define PMTEST_WORKLOADS_REDIS_LITE_HH

#include <string>
#include <vector>

#include "txlib/obj_pool.hh"
#include "util/random.hh"

namespace pmtest::workloads
{

/** A capacity-bounded persistent KV store with approximated LRU. */
class RedisLite
{
  public:
    /**
     * @param capacity max live keys before eviction kicks in
     * @param nbuckets index chain count
     */
    RedisLite(txlib::ObjPool &pool, size_t capacity,
              size_t nbuckets = 4096);

    /** Insert or update (evicts when at capacity). */
    void set(const std::string &key, const std::string &value);

    /** Fetch. @return true and fill @p out when present. */
    bool get(const std::string &key, std::string *out);

    /** Delete. @return true when the key existed. */
    bool del(const std::string &key);

    /** Live keys. */
    size_t count() const;

    /** Total evictions performed. */
    uint64_t evictions() const { return evictions_; }

    /** Wrap mutations in TX_CHECKER_START/END. */
    bool emitCheckers = false;

  private:
    struct Node
    {
        uint64_t keyHash;
        uint32_t keyLen;
        uint32_t valueLen;
        char *keyBytes;
        char *valueBytes;
        Node *next;
        uint64_t lruClock; ///< volatile-ish access stamp (like Redis)
    };

    struct Root
    {
        Node **buckets;
        uint64_t nbuckets;
        uint64_t count;
    };

    static uint64_t hashKey(const std::string &key);
    Node *find(const std::string &key, Node ***slot_out);
    void removeSlot(Node **slot);
    void evictOne();

    txlib::ObjPool &pool_;
    Root *root_;
    uint64_t clock_ = 0;
    size_t capacity_;
    Rng rng_{0xeedc0ffee};
    uint64_t evictions_ = 0;
};

} // namespace pmtest::workloads

#endif // PMTEST_WORKLOADS_REDIS_LITE_HH
