#include "workloads/bug_injector.hh"

#include "core/api.hh"
#include "core/engine.hh"
#include "mnemosyne/region.hh"
#include "pmds/btree_map.hh"
#include "pmds/ctree_map.hh"
#include "pmds/hashmap_atomic.hh"
#include "pmds/hashmap_tx.hh"
#include "pmds/rbtree_map.hh"
#include "pmfs/pmfs.hh"
#include "util/logging.hh"
#include "workloads/memcached_lite.hh"

namespace pmtest::workloads
{

using core::FindingKind;
using core::Report;

namespace
{

/** Run @p body under a fresh PMTest instance and return the report. */
Report
underPmtest(const std::function<void()> &body)
{
    ScopedLogSilencer quiet;
    pmtestInit(Config{});
    pmtestThreadInit();
    pmtestStart();
    body();
    pmtestSendTrace();
    Report report = pmtestResults();
    pmtestEnd();
    pmtestExit();
    return report;
}

/** Insert @p ops keys into a map built with @p faults. */
template <typename MapT>
Report
mapCase(pmds::MapFaults faults, size_t ops, size_t value_size,
        uint64_t key_stride, txlib::BugKnobs pool_knobs = {})
{
    return underPmtest([&] {
        txlib::ObjPool pool(ops * (value_size + 512) + (4u << 20));
        pool.bugs = pool_knobs;
        MapT map(pool);
        map.faults = faults;
        map.emitCheckers = true;
        std::vector<uint8_t> value(value_size, 0x5a);
        for (size_t i = 0; i < ops; i++)
            map.insert(1 + i * key_stride, value.data(), value.size());
    });
}

/** Build a B-tree, then force the remove/rotate path. */
Report
btreeRotateCase(pmds::MapFaults faults, size_t ops)
{
    return underPmtest([&] {
        txlib::ObjPool pool(ops * 512 + (4u << 20));
        pmds::BtreeMap map(pool);
        std::vector<uint8_t> value(32, 0x5a);
        for (size_t i = 0; i < ops; i++)
            map.insert(1 + i, value.data(), value.size());
        // Removing from the low end forces borrows from the right
        // sibling (rotateLeft), the duplicate-log site.
        map.faults = faults;
        map.emitCheckers = true;
        for (size_t i = 0; i < ops / 2; i++)
            map.remove(1 + i);
    });
}

/** Drive memcached-lite over a faulty Mnemosyne region. */
Report
mnemosyneCase(mnemosyne::RegionFaults faults, size_t ops)
{
    return underPmtest([&] {
        mnemosyne::Region region(16u << 20);
        region.faults = faults;
        region.emitCheckers = true;
        MemcachedLite server(region);
        for (size_t i = 0; i < ops; i++) {
            server.set("key-" + std::to_string(i),
                       std::string(64, 'x'));
        }
    });
}

/** Drive the mini PMFS with fault knobs. */
Report
pmfsCase(pmfs::PmfsFaults faults, pmfs::JournalFaults journal_faults,
         size_t ops)
{
    return underPmtest([&] {
        pmfs::Pmfs fs(8u << 20, false, /*use_fifo=*/true);
        fs.faults = faults;
        fs.journal().faults = journal_faults;
        fs.emitCheckers = true;
        const std::string payload(256, 'd');
        for (size_t i = 0; i < ops; i++) {
            const std::string name = "f" + std::to_string(i % 8);
            int ino = fs.lookup(name);
            if (ino < 0)
                ino = fs.create(name);
            fs.write(ino, 0, payload.data(), payload.size());
        }
        fs.drainTraces();
    });
}

void
addCase(std::vector<BugCase> &cases, std::string id,
        std::string category, FindingKind expected,
        std::function<Report()> run)
{
    cases.push_back(BugCase{std::move(id), std::move(category),
                            expected, std::move(run)});
}

} // namespace

bool
reportContains(const Report &report, FindingKind kind)
{
    for (const auto &f : report.findings())
        if (f.kind == kind)
            return true;
    return false;
}

std::vector<BugCase>
buildTable5Campaign()
{
    using pmds::BtreeMap;
    using pmds::CtreeMap;
    using pmds::HashmapAtomic;
    using pmds::HashmapTx;
    using pmds::RbtreeMap;

    std::vector<BugCase> cases;

    // ---- Low-level: ordering (4 cases) --------------------------
    {
        pmds::MapFaults f;
        f.skipFence = true;
        addCase(cases, "atomic-skip-fence", "ordering",
                FindingKind::NotOrdered, [f] {
                    return mapCase<HashmapAtomic>(f, 8, 64, 3);
                });
    }
    {
        pmds::MapFaults f;
        f.misplacedFence = true;
        addCase(cases, "atomic-misplaced-fence", "ordering",
                FindingKind::NotOrdered, [f] {
                    return mapCase<HashmapAtomic>(f, 8, 64, 3);
                });
    }
    {
        mnemosyne::RegionFaults f;
        f.skipLogFlush = true;
        addCase(cases, "mnemosyne-skip-log-flush", "ordering",
                FindingKind::NotOrdered,
                [f] { return mnemosyneCase(f, 8); });
    }
    {
        pmfs::PmfsFaults f;
        f.skipDataFence = true;
        addCase(cases, "pmfs-skip-data-fence", "ordering",
                FindingKind::NotOrdered,
                [f] { return pmfsCase(f, {}, 8); });
    }

    // ---- Low-level: writeback (6 cases) -------------------------
    for (size_t ops : {4, 32}) {
        pmds::MapFaults f;
        f.skipFlush = true;
        addCase(cases,
                "atomic-skip-flush-" + std::to_string(ops),
                "writeback", FindingKind::NotPersisted, [f, ops] {
                    return mapCase<HashmapAtomic>(f, ops, 64, 3);
                });
    }
    for (size_t ops : {4, 32}) {
        mnemosyne::RegionFaults f;
        f.skipDataFlush = true;
        addCase(cases,
                "mnemosyne-skip-data-flush-" + std::to_string(ops),
                "writeback", FindingKind::NotPersisted,
                [f, ops] { return mnemosyneCase(f, ops); });
    }
    for (size_t ops : {4, 16}) {
        pmfs::PmfsFaults f;
        f.skipDataFlush = true;
        addCase(cases, "pmfs-skip-data-flush-" + std::to_string(ops),
                "writeback", FindingKind::NotPersisted,
                [f, ops] { return pmfsCase(f, {}, ops); });
    }

    // ---- Low-level: performance (2 cases) -----------------------
    {
        pmds::MapFaults f;
        f.extraFlush = true;
        addCase(cases, "atomic-extra-flush", "perf-writeback",
                FindingKind::RedundantFlush, [f] {
                    return mapCase<HashmapAtomic>(f, 8, 64, 3);
                });
    }
    {
        pmfs::PmfsFaults f;
        f.doubleFlushXip = true;
        addCase(cases, "pmfs-double-flush-xip", "perf-writeback",
                FindingKind::RedundantFlush,
                [f] { return pmfsCase(f, {}, 8); });
    }

    // ---- Transaction: backup (19 cases) -------------------------
    {
        pmds::MapFaults f;
        f.skipTxAdd = true;
        for (size_t ops : {2, 4, 8, 16, 32}) {
            addCase(cases, "ctree-skip-txadd-" + std::to_string(ops),
                    "backup", FindingKind::MissingLog, [f, ops] {
                        return mapCase<CtreeMap>(f, ops, 64, 7);
                    });
        }
        for (size_t ops : {2, 8, 16, 32, 64}) {
            addCase(cases, "btree-skip-txadd-" + std::to_string(ops),
                    "backup", FindingKind::MissingLog, [f, ops] {
                        return mapCase<BtreeMap>(f, ops, 64, 1);
                    });
        }
        for (size_t ops : {3, 8, 16, 32, 64}) {
            addCase(cases, "rbtree-skip-txadd-" + std::to_string(ops),
                    "backup", FindingKind::MissingLog, [f, ops] {
                        return mapCase<RbtreeMap>(f, ops, 64, 1);
                    });
        }
        for (size_t ops : {1, 4, 16, 64}) {
            addCase(cases,
                    "hashmaptx-skip-txadd-" + std::to_string(ops),
                    "backup", FindingKind::MissingLog, [f, ops] {
                        return mapCase<HashmapTx>(f, ops, 64, 5);
                    });
        }
    }

    // ---- Transaction: completion (7 cases) ----------------------
    {
        txlib::BugKnobs knobs;
        knobs.skipCommitFlush = true;
        addCase(cases, "ctree-skip-commit-flush", "completion",
                FindingKind::IncompleteTx, [knobs] {
                    return mapCase<CtreeMap>({}, 8, 64, 7, knobs);
                });
        addCase(cases, "btree-skip-commit-flush", "completion",
                FindingKind::IncompleteTx, [knobs] {
                    return mapCase<BtreeMap>({}, 8, 64, 1, knobs);
                });
        addCase(cases, "rbtree-skip-commit-flush", "completion",
                FindingKind::IncompleteTx, [knobs] {
                    return mapCase<RbtreeMap>({}, 8, 64, 1, knobs);
                });
        addCase(cases, "hashmaptx-skip-commit-flush", "completion",
                FindingKind::IncompleteTx, [knobs] {
                    return mapCase<HashmapTx>({}, 8, 64, 5, knobs);
                });
        addCase(cases, "ctree-skip-commit-flush-large", "completion",
                FindingKind::IncompleteTx, [knobs] {
                    return mapCase<CtreeMap>({}, 4, 1024, 7, knobs);
                });
        addCase(cases, "btree-skip-commit-flush-large", "completion",
                FindingKind::IncompleteTx, [knobs] {
                    return mapCase<BtreeMap>({}, 4, 1024, 1, knobs);
                });
        addCase(cases, "rbtree-skip-commit-flush-large", "completion",
                FindingKind::IncompleteTx, [knobs] {
                    return mapCase<RbtreeMap>({}, 4, 1024, 1, knobs);
                });
    }

    // ---- Transaction: performance (4 cases) ---------------------
    {
        pmds::MapFaults f;
        f.extraTxAdd = true;
        addCase(cases, "ctree-extra-txadd", "perf-log",
                FindingKind::DuplicateLog, [f] {
                    return mapCase<CtreeMap>(f, 8, 64, 7);
                });
        addCase(cases, "hashmaptx-extra-txadd", "perf-log",
                FindingKind::DuplicateLog, [f] {
                    return mapCase<HashmapTx>(f, 8, 64, 5);
                });
        addCase(cases, "btree-rotate-extra-txadd", "perf-log",
                FindingKind::DuplicateLog,
                [f] { return btreeRotateCase(f, 64); });
        mnemosyne::RegionFaults mf;
        mf.duplicateAppend = true;
        addCase(cases, "mnemosyne-duplicate-append", "perf-log",
                FindingKind::DuplicateLog,
                [mf] { return mnemosyneCase(mf, 8); });
    }

    return cases;
}

std::vector<BugCase>
buildTable6Campaign()
{
    std::vector<BugCase> cases;

    // Known bug 1: xips.c — flush the same buffer twice.
    {
        pmfs::PmfsFaults f;
        f.doubleFlushXip = true;
        addCase(cases, "known-xips-double-flush", "known",
                FindingKind::RedundantFlush,
                [f] { return pmfsCase(f, {}, 8); });
    }
    // Known bug 2: files.c — flush an unmapped buffer.
    {
        pmfs::PmfsFaults f;
        f.flushUnmapped = true;
        addCase(cases, "known-files-flush-unmapped", "known",
                FindingKind::UnnecessaryFlush,
                [f] { return pmfsCase(f, {}, 8); });
    }
    // Known bug 3: rbtree_map.c — modify a node without logging it.
    {
        pmds::MapFaults f;
        f.skipTxAdd = true;
        addCase(cases, "known-rbtree-missing-log", "known",
                FindingKind::MissingLog, [f] {
                    return mapCase<pmds::RbtreeMap>(f, 8, 64, 1);
                });
    }
    // New bug 1: journal.c — redundant flush when committing.
    {
        pmfs::JournalFaults jf;
        jf.redundantCommitFlush = true;
        addCase(cases, "new-journal-redundant-flush", "new",
                FindingKind::RedundantFlush,
                [jf] { return pmfsCase({}, jf, 8); });
    }
    // New bug 2: btree_map.c:201 — modify a node without logging it.
    {
        pmds::MapFaults f;
        f.skipTxAdd = true;
        addCase(cases, "new-btree-missing-log", "new",
                FindingKind::MissingLog, [f] {
                    return mapCase<pmds::BtreeMap>(f, 8, 64, 1);
                });
    }
    // New bug 3: btree_map.c:367 — log the same object twice.
    {
        pmds::MapFaults f;
        f.extraTxAdd = true;
        addCase(cases, "new-btree-duplicate-log", "new",
                FindingKind::DuplicateLog,
                [f] { return btreeRotateCase(f, 64); });
    }

    return cases;
}

CapturedRun
capturedRun(const std::function<void()> &body, core::ModelKind kind)
{
    ScopedLogSilencer quiet;
    CapturedRun run;
    pmtestInit(Config{});
    pmtestThreadInit();
    // Intercept sealed traces instead of letting the framework's pool
    // check them; the inline engine below is the same checking path,
    // and keeping the traces is what makes patched replay possible.
    pmtestSetTraceSink(
        [&run](Trace &&trace) { run.traces.push_back(std::move(trace)); });
    pmtestStart();
    body();
    pmtestSendTrace();
    pmtestSetTraceSink(nullptr);
    pmtestEnd();
    pmtestExit();

    core::Engine engine(kind);
    for (const Trace &trace : run.traces)
        run.report.merge(engine.check(trace));
    return run;
}

CampaignOutcome
runCampaign(const std::vector<BugCase> &cases)
{
    CampaignOutcome outcome;
    for (const auto &bug : cases) {
        outcome.total++;
        auto &[count, found] = outcome.byCategory[bug.category];
        count++;
        const Report report = bug.run();
        if (reportContains(report, bug.expected)) {
            outcome.detected++;
            found++;
        } else {
            outcome.missed.push_back(bug.id);
        }
    }
    return outcome;
}

} // namespace pmtest::workloads
