#include "workloads/clients.hh"

#include "baseline/pmemcheck.hh"
#include "util/random.hh"

namespace pmtest::workloads
{

namespace
{

std::string
keyFor(uint64_t index)
{
    return "key-" + std::to_string(index);
}

std::string
valueOf(size_t size, uint64_t salt)
{
    std::string v(size, 'v');
    for (size_t i = 0; i < v.size(); i++)
        v[i] = static_cast<char>('a' + ((salt + i) % 26));
    return v;
}

} // namespace

uint64_t
simulateRequestWork(const void *payload, size_t size, size_t rounds)
{
    // FNV-1a over the payload, `rounds` times; the result is returned
    // so the optimizer cannot elide the loop.
    uint64_t h = 0xcbf29ce484222325ULL;
    const auto *bytes = static_cast<const uint8_t *>(payload);
    for (size_t r = 0; r < rounds; r++) {
        for (size_t i = 0; i < size; i++) {
            h ^= bytes[i];
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

namespace
{

/** Per-op request-processing stand-in keyed off the config. */
volatile uint64_t g_request_sink;

void
requestWork(const ClientConfig &config, const std::string &payload)
{
    if (config.requestWork == 0)
        return;
    size_t rounds = config.requestWork;
    if (baseline::dbiActive()) {
        // Under the pmemcheck stand-in, model Valgrind's whole-
        // program instrumentation tax on the non-PM compute.
        rounds *= baseline::dbiSlowdownFactor();
    }
    g_request_sink =
        simulateRequestWork(payload.data(), payload.size(), rounds);
}

} // namespace

void
runMemslapClient(MemcachedLite &server, const ClientConfig &config)
{
    Rng rng(config.seed);
    std::string out;
    for (size_t i = 0; i < config.ops; i++) {
        const uint64_t k = rng.below(config.keySpace);
        if (rng.chance(5, 100)) {
            const std::string value = valueOf(config.valueSize, k + i);
            requestWork(config, value);
            server.set(keyFor(k), value);
        } else {
            server.get(keyFor(k), &out);
            requestWork(config, out);
        }
    }
}

void
runYcsbClient(MemcachedLite &server, const ClientConfig &config)
{
    Rng rng(config.seed);
    std::string out;
    for (size_t i = 0; i < config.ops; i++) {
        const uint64_t k = rng.below(config.keySpace);
        if (rng.chance(50, 100)) {
            const std::string value = valueOf(config.valueSize, k + i);
            requestWork(config, value);
            server.set(keyFor(k), value);
        } else {
            server.get(keyFor(k), &out);
            requestWork(config, out);
        }
    }
}

void
runRedisLruClient(RedisLite &server, const ClientConfig &config)
{
    Rng rng(config.seed);
    std::string out;
    for (size_t i = 0; i < config.ops; i++) {
        const uint64_t k = rng.below(config.keySpace);
        if (rng.chance(80, 100)) {
            const std::string value = valueOf(config.valueSize, k + i);
            requestWork(config, value);
            server.set(keyFor(k), value);
        } else {
            server.get(keyFor(k), &out);
            requestWork(config, out);
        }
    }
}

void
runFilebenchClient(pmfs::Pmfs &fs, const ClientConfig &config,
                   uint32_t client_id)
{
    Rng rng(config.seed + client_id);
    const std::string prefix =
        "c" + std::to_string(client_id) + "-f";
    const std::string payload = valueOf(config.valueSize, client_id);
    std::vector<char> buf(config.valueSize);

    // File-server mix: 30% create+write, 40% read, 20% append,
    // 10% delete, over a bounded working set of files per client.
    const size_t working_set = 16;
    for (size_t i = 0; i < config.ops; i++) {
        requestWork(config, payload);
        const std::string name =
            prefix + std::to_string(rng.below(working_set));
        const uint64_t dice = rng.below(100);
        int ino = fs.lookup(name);
        if (dice < 30) {
            if (ino < 0)
                ino = fs.create(name);
            if (ino >= 0)
                fs.write(ino, 0, payload.data(), payload.size());
        } else if (dice < 70) {
            if (ino >= 0)
                fs.read(ino, 0, buf.data(), buf.size());
        } else if (dice < 90) {
            if (ino >= 0) {
                const uint64_t size = fs.fileSize(ino);
                if (size + payload.size() <=
                    pmfs::kDirectBlocks * pmfs::kBlockSize) {
                    fs.write(ino, size, payload.data(),
                             payload.size());
                }
            }
        } else {
            if (ino >= 0)
                fs.unlink(name);
        }
    }
}

void
runOltpClient(pmfs::Pmfs &fs, const ClientConfig &config,
              uint32_t client_id)
{
    // One table file per client; records are fixed-size rows that get
    // read-modify-written in place (OLTP-complex style).
    Rng rng(config.seed + client_id);
    const std::string table = "table-" + std::to_string(client_id);
    int ino = fs.lookup(table);
    if (ino < 0)
        ino = fs.create(table);

    constexpr size_t kRecord = 128;
    const size_t n_records =
        pmfs::kDirectBlocks * pmfs::kBlockSize / kRecord;
    std::vector<char> record(kRecord, 0);

    // Seed the table.
    for (size_t r = 0; r < n_records; r++)
        fs.write(ino, r * kRecord, record.data(), kRecord);

    for (size_t i = 0; i < config.ops; i++) {
        requestWork(config,
                    std::string(record.begin(), record.end()));
        const uint64_t r = rng.below(n_records);
        fs.read(ino, r * kRecord, record.data(), kRecord);
        record[rng.below(kRecord)] =
            static_cast<char>(rng.below(256));
        fs.write(ino, r * kRecord, record.data(), kRecord);
    }
}

} // namespace pmtest::workloads
