/**
 * @file
 * Memcached-lite: the WHISPER "memcached on Mnemosyne" workload
 * stand-in (Fig. 11/12). A string key-value cache whose persistent
 * index lives in a mnemosyne::Region; every SET/DELETE is one durable
 * redo-log transaction. Thread-safe: the paper's scalability study
 * (Fig. 12) drives it from 1–4 client threads.
 */

#ifndef PMTEST_WORKLOADS_MEMCACHED_LITE_HH
#define PMTEST_WORKLOADS_MEMCACHED_LITE_HH

#include <mutex>
#include <string>

#include "mnemosyne/region.hh"

namespace pmtest::workloads
{

/** A persistent string key-value cache on Mnemosyne. */
class MemcachedLite
{
  public:
    explicit MemcachedLite(mnemosyne::Region &region,
                           size_t nbuckets = 4096);

    /** Insert or update a key (one durable transaction). */
    void set(const std::string &key, const std::string &value);

    /** Fetch a key. @return true and fill @p out when present. */
    bool get(const std::string &key, std::string *out) const;

    /** Delete a key. @return true when it was present. */
    bool del(const std::string &key);

    /** Number of stored keys. */
    size_t count() const;

  private:
    struct Node
    {
        uint64_t keyHash;
        uint32_t keyLen;
        uint32_t valueLen;
        char *keyBytes;
        char *valueBytes;
        Node *next;
    };

    struct Root
    {
        Node **buckets;
        uint64_t nbuckets;
        uint64_t count;
    };

    static uint64_t hashKey(const std::string &key);
    Node *findLocked(const std::string &key, Node ***slot_out) const;

    mnemosyne::Region &region_;
    Root *root_;
    mutable std::mutex mutex_; ///< index lock (service threads share)
};

} // namespace pmtest::workloads

#endif // PMTEST_WORKLOADS_MEMCACHED_LITE_HH
