/**
 * @file
 * The bug-detection campaigns of the paper's §6.3:
 *
 *  - Table 5: 42 systematically injected synthetic bugs across the
 *    six classes (low-level ordering / writeback / performance,
 *    transaction backup / completion / performance), planted in the
 *    microbench structures, the Mnemosyne library and the mini PMFS.
 *  - Table 6: faithful re-creations of the three known
 *    (commit-history) bugs and the three new bugs PMTest found in
 *    PMFS and the PMDK examples.
 *
 * Each case builds a fresh workload with one fault knob set, runs it
 * under PMTest with the appropriate checkers, and reports whether a
 * finding of the expected kind was produced.
 */

#ifndef PMTEST_WORKLOADS_BUG_INJECTOR_HH
#define PMTEST_WORKLOADS_BUG_INJECTOR_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/persistency_model.hh"
#include "core/report.hh"
#include "trace/trace.hh"

namespace pmtest::workloads
{

/** One injected-bug case. */
struct BugCase
{
    std::string id;       ///< unique case name
    std::string category; ///< Table 5 row ("ordering", "backup", ...)
    core::FindingKind expected; ///< finding kind that proves detection
    std::function<core::Report()> run; ///< build, run, report
};

/** Result of running a campaign. */
struct CampaignOutcome
{
    size_t total = 0;
    size_t detected = 0;
    /** category -> (cases, detected). */
    std::map<std::string, std::pair<size_t, size_t>> byCategory;
    std::vector<std::string> missed; ///< ids of undetected cases
};

/** Build the 42-case Table 5 campaign. */
std::vector<BugCase> buildTable5Campaign();

/** Build the 6-case Table 6 campaign (3 known + 3 new bugs). */
std::vector<BugCase> buildTable6Campaign();

/** Run a campaign, checking each case's report for detection. */
CampaignOutcome runCampaign(const std::vector<BugCase> &cases);

/** Whether @p report contains a finding of @p kind. */
bool reportContains(const core::Report &report, core::FindingKind kind);

/**
 * A bug-case run captured for patched replay: the merged report plus
 * the sealed traces it was computed from, so core::verifyHints can
 * re-check patched copies of exactly what the checker saw.
 */
struct CapturedRun
{
    core::Report report;
    std::vector<Trace> traces;
};

/**
 * Run @p body under a fresh PMTest instance like the campaign cases
 * do, but intercept the sealed traces with a capture sink and check
 * them inline on one Engine of @p kind. Workloads that submit traces
 * directly (the PMFS FIFO pump) bypass the sink and are not captured.
 */
CapturedRun capturedRun(const std::function<void()> &body,
                        core::ModelKind kind = core::ModelKind::X86);

} // namespace pmtest::workloads

#endif // PMTEST_WORKLOADS_BUG_INJECTOR_HH
