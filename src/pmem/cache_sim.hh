/**
 * @file
 * Volatile cache model in front of the simulated PM device.
 *
 * This is the substrate that makes crash states *constructible*: a
 * store lands in a volatile line; `clwb` schedules a writeback of the
 * line's content at flush time; `sfence` completes scheduled
 * writebacks. Until a line's content is written back AND fenced, a
 * crash may or may not expose it — and because hardware can evict a
 * dirty line at any moment, every intermediate content the line held
 * since it was last clean is a legal crash-time value. The model
 * records those intermediate contents as per-line snapshots, which the
 * crash injector uses to enumerate/sample legal crash images.
 */

#ifndef PMTEST_PMEM_CACHE_SIM_HH
#define PMTEST_PMEM_CACHE_SIM_HH

#include <cstdint>
#include <map>
#include <vector>

#include "pmem/pm_device.hh"

namespace pmtest::pmem
{

/** Cache line size in bytes (x86). */
constexpr size_t kLineSize = 64;

/** Content of one cache line. */
using LineData = std::vector<uint8_t>; // always kLineSize bytes

/**
 * One line's volatile crash-relevant state: the contents it could
 * legally have on the persistent device if the machine lost power now.
 */
struct LineCrashChoices
{
    uint64_t lineIndex = 0;
    /**
     * Candidate persisted contents beyond "whatever the device already
     * holds" (which is always a legal outcome for an unfenced line).
     */
    std::vector<LineData> candidates;
};

/**
 * The volatile cache. All addresses are device offsets.
 *
 * Snapshot recording is optional: performance benchmarks run with it
 * disabled, crash-validation tests with it enabled.
 */
class CacheSim
{
  public:
    /**
     * @param device backing persistent device
     * @param record_snapshots whether to track per-store snapshots for
     *        crash-state enumeration
     */
    explicit CacheSim(PmDevice &device, bool record_snapshots = true);

    /** Store @p size bytes of @p data at @p offset (program order). */
    void store(uint64_t offset, const void *data, size_t size);

    /**
     * Load @p size bytes at @p offset into @p out; reads observe cache
     * content over device content (normal memory semantics).
     */
    void load(uint64_t offset, void *out, size_t size) const;

    /**
     * Issue a writeback for every line overlapping the range. The
     * line's *current* content is captured; it is guaranteed durable
     * only after the next sfence.
     */
    void clwb(uint64_t offset, size_t size);

    /** Like clwb but also evicts the line (clflush/clflushopt). */
    void clflush(uint64_t offset, size_t size);

    /**
     * Store fence: completes all issued writebacks (their captured
     * contents reach the device) and establishes durability for them.
     */
    void sfence();

    /**
     * Write every dirty line back and fence — used to reach a known
     * clean state between test phases (not an x86 primitive).
     */
    void flushAll();

    /**
     * Crash-relevant state of all lines that are not fully persisted:
     * one entry per dirty/pending line with its legal contents.
     */
    std::vector<LineCrashChoices> crashChoices() const;

    /** True when no line holds unpersisted data. */
    bool clean() const;

    /** Backing device. */
    PmDevice &device() { return device_; }
    const PmDevice &device() const { return device_; }

    /** @{ Statistics. */
    uint64_t storeCount() const { return storeCount_; }
    uint64_t flushCount() const { return flushCount_; }
    uint64_t fenceCount() const { return fenceCount_; }
    /** @} */

  private:
    struct Line
    {
        LineData data;            ///< current (volatile) content
        bool dirty = false;       ///< holds unpersisted stores
        bool flushIssued = false; ///< clwb issued, fence outstanding
        LineData flushData;       ///< content captured at clwb time
        /** Contents after each store since the line was last clean. */
        std::vector<LineData> snapshots;
    };

    Line &lineFor(uint64_t line_index);
    void snapshotLine(Line &line);

    /** Cap on retained snapshots per line, to bound memory. */
    static constexpr size_t kMaxSnapshots = 16;

    PmDevice &device_;
    bool recordSnapshots_;
    std::map<uint64_t, Line> lines_;
    uint64_t storeCount_ = 0;
    uint64_t flushCount_ = 0;
    uint64_t fenceCount_ = 0;
};

} // namespace pmtest::pmem

#endif // PMTEST_PMEM_CACHE_SIM_HH
