#include "pmem/cache_sim.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace pmtest::pmem
{

CacheSim::CacheSim(PmDevice &device, bool record_snapshots)
    : device_(device), recordSnapshots_(record_snapshots)
{
}

CacheSim::Line &
CacheSim::lineFor(uint64_t line_index)
{
    auto it = lines_.find(line_index);
    if (it != lines_.end())
        return it->second;

    Line line;
    line.data.resize(kLineSize);
    device_.read(line_index * kLineSize, line.data.data(), kLineSize);
    return lines_.emplace(line_index, std::move(line)).first->second;
}

void
CacheSim::snapshotLine(Line &line)
{
    if (!recordSnapshots_)
        return;
    if (line.snapshots.size() >= kMaxSnapshots) {
        // Keep the earliest and latest states; drop a middle one so the
        // extremes of the reachable crash-state space stay represented.
        line.snapshots.erase(line.snapshots.begin() +
                             line.snapshots.size() / 2);
    }
    line.snapshots.push_back(line.data);
}

void
CacheSim::store(uint64_t offset, const void *data, size_t size)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    storeCount_++;
    while (size > 0) {
        const uint64_t line_index = offset / kLineSize;
        const size_t in_line = offset % kLineSize;
        const size_t chunk = std::min(size, kLineSize - in_line);

        Line &line = lineFor(line_index);
        std::memcpy(line.data.data() + in_line, bytes, chunk);
        line.dirty = true;
        snapshotLine(line);

        offset += chunk;
        bytes += chunk;
        size -= chunk;
    }
}

void
CacheSim::load(uint64_t offset, void *out, size_t size) const
{
    auto *bytes = static_cast<uint8_t *>(out);
    while (size > 0) {
        const uint64_t line_index = offset / kLineSize;
        const size_t in_line = offset % kLineSize;
        const size_t chunk = std::min(size, kLineSize - in_line);

        auto it = lines_.find(line_index);
        if (it != lines_.end()) {
            std::memcpy(bytes, it->second.data.data() + in_line, chunk);
        } else {
            device_.read(offset, bytes, chunk);
        }

        offset += chunk;
        bytes += chunk;
        size -= chunk;
    }
}

void
CacheSim::clwb(uint64_t offset, size_t size)
{
    flushCount_++;
    const uint64_t first = offset / kLineSize;
    const uint64_t last = (offset + size - 1) / kLineSize;
    for (uint64_t li = first; li <= last; li++) {
        Line &line = lineFor(li);
        line.flushIssued = true;
        line.flushData = line.data;
    }
}

void
CacheSim::clflush(uint64_t offset, size_t size)
{
    // Same durability semantics as clwb for our purposes; eviction only
    // affects performance, and loads fall through to flushData via the
    // retained line, so we keep the line around until the fence.
    clwb(offset, size);
}

void
CacheSim::sfence()
{
    fenceCount_++;
    for (auto &[index, line] : lines_) {
        if (!line.flushIssued)
            continue;
        device_.write(index * kLineSize, line.flushData.data(), kLineSize);
        line.flushIssued = false;
        if (line.data == line.flushData) {
            line.dirty = false;
            line.snapshots.clear();
        } else {
            // Stores landed after the clwb captured the line: those
            // remain volatile. Reset the snapshot set to the states
            // still reachable beyond the persisted image.
            line.snapshots.clear();
            snapshotLine(line);
        }
    }
}

void
CacheSim::flushAll()
{
    for (auto &[index, line] : lines_) {
        if (!line.dirty)
            continue;
        device_.write(index * kLineSize, line.data.data(), kLineSize);
        line.dirty = false;
        line.flushIssued = false;
        line.snapshots.clear();
    }
    fenceCount_++;
}

std::vector<LineCrashChoices>
CacheSim::crashChoices() const
{
    std::vector<LineCrashChoices> choices;
    for (const auto &[index, line] : lines_) {
        if (!line.dirty && !line.flushIssued)
            continue;

        LineCrashChoices c;
        c.lineIndex = index;
        if (recordSnapshots_) {
            c.candidates = line.snapshots;
        }
        if (line.flushIssued &&
            std::find(c.candidates.begin(), c.candidates.end(),
                      line.flushData) == c.candidates.end()) {
            c.candidates.push_back(line.flushData);
        }
        if (c.candidates.empty() ||
            std::find(c.candidates.begin(), c.candidates.end(),
                      line.data) == c.candidates.end()) {
            c.candidates.push_back(line.data);
        }
        choices.push_back(std::move(c));
    }
    return choices;
}

bool
CacheSim::clean() const
{
    for (const auto &[index, line] : lines_) {
        (void)index;
        if (line.dirty || line.flushIssued)
            return false;
    }
    return true;
}

} // namespace pmtest::pmem
