/**
 * @file
 * A persistent-memory pool: the mmap'ed region a CCS places its
 * persistent heap in (PMDK's pmemobj pool, Mnemosyne's segments, or a
 * PMFS volume). The pool owns a host buffer that the program reads and
 * writes directly — like a DAX mapping — plus, optionally, a simulated
 * device/cache pair mirroring the stores so crash states can be
 * constructed. A first-fit allocator hands out ranges; allocator
 * metadata is volatile (the transactional libraries above make
 * allocation crash-safe where the paper's workloads need it).
 */

#ifndef PMTEST_PMEM_PM_POOL_HH
#define PMTEST_PMEM_PM_POOL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "pmem/cache_sim.hh"
#include "pmem/pm_device.hh"

namespace pmtest::pmem
{

/** A pool of persistent memory with optional crash simulation. */
class PmPool
{
  public:
    /**
     * @param size pool size in bytes
     * @param simulate_crashes mirror stores into a CacheSim/PmDevice
     *        pair so CrashInjector can build crash images
     */
    explicit PmPool(size_t size, bool simulate_crashes = false);

    /** Pool size in bytes. */
    size_t size() const { return buffer_.size(); }

    /** Base of the directly-accessible (DAX-like) region. */
    uint8_t *base() { return buffer_.data(); }
    const uint8_t *base() const { return buffer_.data(); }

    /** Translate a pointer inside the pool to a pool offset. */
    uint64_t offsetOf(const void *ptr) const;

    /** Translate a pool offset to a pointer. */
    void *at(uint64_t offset);
    const void *at(uint64_t offset) const;

    /** True when @p ptr points inside the pool. */
    bool contains(const void *ptr) const;

    /**
     * Allocate @p size bytes (16-byte aligned, first fit).
     * @return pool offset of the allocation.
     */
    uint64_t alloc(size_t size);

    /** Free an allocation previously returned by alloc(). */
    void free(uint64_t offset);

    /** Bytes currently allocated. */
    size_t allocatedBytes() const { return allocatedBytes_; }

    /**
     * Reserved root area at the start of the pool (offset 0,
     * kRootSize bytes) where a CCS anchors its top-level object.
     */
    static constexpr size_t kRootSize = 1024;

    /** @{ Crash simulation (null when simulate_crashes was false). */
    bool simulating() const { return cache_ != nullptr; }
    CacheSim *cache() { return cache_.get(); }
    PmDevice *pmDevice() { return device_.get(); }
    /** @} */

  private:
    std::vector<uint8_t> buffer_;
    std::unique_ptr<PmDevice> device_;
    std::unique_ptr<CacheSim> cache_;

    /** Free ranges: start offset -> length. */
    std::map<uint64_t, size_t> freeList_;
    /** Live allocations: start offset -> length. */
    std::map<uint64_t, size_t> live_;
    size_t allocatedBytes_ = 0;
};

} // namespace pmtest::pmem

#endif // PMTEST_PMEM_PM_POOL_HH
