/**
 * @file
 * ImageView: typed reads from a crash image. Persistent data
 * structures store live host pointers into the pool buffer; when a
 * crash image (raw byte vector) is examined, every pointer must be
 * translated to an image offset. Recovery predicates use this view to
 * traverse structures exactly as a restarted program would.
 */

#ifndef PMTEST_PMEM_IMAGE_VIEW_HH
#define PMTEST_PMEM_IMAGE_VIEW_HH

#include <cstring>
#include <vector>

#include "pmem/pm_pool.hh"
#include "pmem/tracked_image.hh"
#include "util/logging.hh"

namespace pmtest::pmem
{

/** Read-only typed access to a pool crash image. */
class ImageView
{
  public:
    /**
     * @param pool the live pool the image was captured from (supplies
     *        the base address for pointer translation)
     * @param image the crash image; must match the pool size
     * @param tracker optional read-set recorder — every read through
     *        the view is reported so the crash-state oracle can prune
     *        states the walker cannot distinguish
     */
    ImageView(const PmPool &pool, const std::vector<uint8_t> &image,
              ReadSetTracker *tracker = nullptr)
        : pool_(pool), image_(image), tracker_(tracker)
    {
        if (image.size() != pool.size())
            panic("ImageView: image size does not match pool");
    }

    /** Translate a live pointer into an image offset. */
    uint64_t
    offsetOf(const void *live_ptr) const
    {
        return pool_.offsetOf(live_ptr);
    }

    /** Whether @p live_ptr points inside the pool. */
    bool contains(const void *live_ptr) const
    {
        return pool_.contains(live_ptr);
    }

    /** Read a T at the image location corresponding to @p live_ptr. */
    template <typename T>
    T
    read(const void *live_ptr) const
    {
        return readAt<T>(offsetOf(live_ptr));
    }

    /** Read a T at an absolute image offset. */
    template <typename T>
    T
    readAt(uint64_t offset) const
    {
        T value;
        readBytes(offset, &value, sizeof(T));
        return value;
    }

    /** Copy raw bytes from the image. */
    void
    readBytes(uint64_t offset, void *out, size_t size) const
    {
        if (offset + size > image_.size())
            panic("ImageView: read outside image");
        if (tracker_)
            tracker_->noteRead(offset, size, image_.data() + offset);
        std::memcpy(out, image_.data() + offset, size);
    }

    /** The underlying image. */
    const std::vector<uint8_t> &image() const { return image_; }

    /** The attached read-set tracker (null when untracked). */
    ReadSetTracker *tracker() const { return tracker_; }

  private:
    const PmPool &pool_;
    const std::vector<uint8_t> &image_;
    ReadSetTracker *tracker_;
};

} // namespace pmtest::pmem

#endif // PMTEST_PMEM_IMAGE_VIEW_HH
