/**
 * @file
 * Crash-state construction over the cache model. Used by the Yat-style
 * exhaustive baseline and by property tests that validate PMTest's
 * interval verdicts against ground truth: a crash image is the device
 * image plus, for every unpersisted line, one of the contents that
 * line could legally have reached the device with.
 *
 * The injector canonicalizes the per-line choice space at
 * construction: the device's current content is always choice 0,
 * candidate contents equal to the device content or to each other are
 * collapsed, and lines whose every choice is the device content are
 * dropped entirely (they cannot distinguish crash states). stateCount
 * reports the canonical space, rawStateCount the uncollapsed
 * Π(1+candidates) product the cache model implies.
 *
 * Beyond enumerate()/sample(), explore() runs a recovery predicate
 * over the space directly — in place on a caller-owned working image
 * mutated via per-line apply/undo deltas (no per-state pool copy) —
 * and, in representative mode, tests only one state per
 * recovery-distinguishable equivalence class: the predicate's
 * read set (recorded by a ReadSetTracker) proves which unpersisted
 * lines recovery never observes, and the cross product over those
 * lines collapses to a multiplicative weight. A PredicateMemo reuses
 * verdicts across crash points whose images agree on the read set.
 */

#ifndef PMTEST_PMEM_CRASH_INJECTOR_HH
#define PMTEST_PMEM_CRASH_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "pmem/cache_sim.hh"
#include "pmem/tracked_image.hh"
#include "util/random.hh"

namespace pmtest::pmem
{

/** Recovery predicate run under read-set tracking. */
using TrackedPredicate = std::function<bool(TrackedImage &image)>;

/**
 * Verdict cache keyed on crash-read content, shared across crash
 * points. A recovery run is fully determined by the bytes it
 * crash-reads, so a candidate image that matches a previous run's
 * crash-read ranges byte-for-byte must produce that run's verdict
 * and read the same lines — both are stored and reused without
 * executing the predicate. Keys are 64-bit FNV hashes, so a reused
 * verdict is exact up to hash collision odds (~2^-64 per pair);
 * disable memoization for bit-exact oracle runs.
 */
class PredicateMemo
{
  public:
    struct Entry
    {
        bool verdict;
        std::vector<uint64_t> readLines;
    };

    /**
     * Find an entry whose recorded crash reads match @p image.
     * @return the entry, or nullptr when no prior run matches.
     */
    const Entry *
    lookup(const std::vector<uint8_t> &image) const
    {
        for (const auto &[sig, group] : groups_) {
            const uint64_t hash =
                ReadSetTracker::hashImageOver(image, group.ranges);
            auto it = group.entries.find(hash);
            if (it != group.entries.end())
                return &it->second;
        }
        return nullptr;
    }

    /** Record a completed run's read set and verdict. */
    void
    insert(const ReadSetTracker &tracker, bool verdict)
    {
        if (entryCount_ >= kMaxEntries) {
            groups_.clear();
            entryCount_ = 0;
        }
        Group &group = groups_[tracker.rangeSignature()];
        if (group.entries.empty())
            group.ranges = tracker.readRanges();
        auto [it, inserted] = group.entries.emplace(
            tracker.contentHash(),
            Entry{verdict, tracker.readLines()});
        (void)it;
        if (inserted)
            entryCount_++;
    }

    /** Total entries currently cached. */
    size_t size() const { return entryCount_; }

    void
    clear()
    {
        groups_.clear();
        entryCount_ = 0;
    }

  private:
    /** Entries sharing one crash-read range list. */
    struct Group
    {
        std::vector<ReadSetTracker::ReadRange> ranges;
        std::unordered_map<uint64_t, Entry> entries;
    };

    /** Bound on retained entries; the cache resets at the cap. */
    static constexpr size_t kMaxEntries = size_t{1} << 16;

    std::unordered_map<uint64_t, Group> groups_;
    size_t entryCount_ = 0;
};

/**
 * Produces crash images from a CacheSim snapshot.
 *
 * Each unpersisted line contributes its canonical choice set (device
 * content first). The full space is the cartesian product over
 * lines; enumerate() walks it (optionally capped), sample() draws
 * uniformly at random, explore() runs a predicate over it with
 * representative pruning and delta images.
 */
class CrashInjector
{
  public:
    /** Options controlling explore(). */
    struct ExploreOptions
    {
        /**
         * Test one representative per recovery-distinguishable class
         * (true) or every canonical state (false).
         */
        bool representative = true;
        /** Cap on predicate evaluations (classes in repr. mode). */
        uint64_t stateCap = UINT64_MAX;
        /** Cross-crash-point verdict cache; null disables. */
        PredicateMemo *memo = nullptr;
    };

    /** Outcome of one explore() call; counters saturate at 2^64-1. */
    struct ExploreResult
    {
        /** Predicate verdicts obtained (classes in repr. mode). */
        uint64_t statesTested = 0;
        /** Crash states those verdicts cover (== tested when
         *  exhaustive; the summed class weights when repr.). */
        uint64_t statesCovered = 0;
        /** Crash states whose recovery predicate failed. */
        uint64_t failures = 0;
        /** Verdicts served from the memo without running recovery. */
        uint64_t memoHits = 0;
        bool truncated = false; ///< stateCap hit before completion
    };

    /**
     * @param cache the cache model to snapshot choices from
     * @param copy_base_image retain a private copy of the device
     *        image for enumerate()/sample(); explore() callers that
     *        maintain their own mirror pass false and skip the copy
     */
    explicit CrashInjector(const CacheSim &cache,
                           bool copy_base_image = true);

    /**
     * Number of canonical crash states (saturating at cap): the
     * product of per-line distinct choices after collapsing
     * duplicates and device-equal candidates.
     */
    uint64_t stateCount(uint64_t cap = UINT64_MAX) const;

    /**
     * Number of states the raw cache-model choice space implies —
     * Π(1+candidates) before canonicalization (saturating at cap).
     * stateCount()/rawStateCount() never exceeds 1; the gap is
     * dedup-level pruning before any read-set reasoning.
     */
    uint64_t rawStateCount(uint64_t cap = UINT64_MAX) const;

    /** Draw one crash image uniformly over the canonical space. */
    std::vector<uint8_t> sample(Rng &rng) const;

    /**
     * Enumerate crash images, invoking @p visit for each until all
     * states are visited or @p limit images have been produced. The
     * vector passed to @p visit is one reused buffer mutated by
     * per-line deltas between states — copy out any bytes needed
     * beyond the callback.
     * @return number of images visited.
     */
    uint64_t
    enumerate(const std::function<void(const std::vector<uint8_t> &)> &visit,
              uint64_t limit = UINT64_MAX) const;

    /**
     * Run @p predicate over the crash-state space in place on
     * @p working, which must hold the device image content on entry
     * and is restored to it on return (picks and recovery writes are
     * both rolled back). In representative mode the predicate must
     * route every image access through the TrackedImage (or an
     * ImageView carrying its tracker) — untracked reads void the
     * pruning argument, untracked writes void the rollback.
     */
    ExploreResult explore(std::vector<uint8_t> &working,
                          const TrackedPredicate &predicate,
                          const ExploreOptions &opts) const;

    /** explore() with default options (representative, uncapped). */
    ExploreResult
    explore(std::vector<uint8_t> &working,
            const TrackedPredicate &predicate) const
    {
        return explore(working, predicate, ExploreOptions());
    }

  private:
    /** One unpersisted line's canonical choices; contents[0] is the
     *  device content at snapshot time. */
    struct Slot
    {
        uint64_t lineIndex;
        std::vector<LineData> contents;
    };

    void applyLine(std::vector<uint8_t> &image, const Slot &slot,
                   size_t pick) const;
    ExploreResult exploreExhaustive(std::vector<uint8_t> &working,
                                    const TrackedPredicate &predicate,
                                    const ExploreOptions &opts) const;
    ExploreResult
    exploreRepresentative(std::vector<uint8_t> &working,
                          const TrackedPredicate &predicate,
                          const ExploreOptions &opts) const;
    bool runPredicate(std::vector<uint8_t> &working,
                      const TrackedPredicate &predicate,
                      ReadSetTracker &tracker) const;

    std::vector<uint8_t> baseImage_; ///< empty when not copied
    std::vector<Slot> slots_;
    /** lineIndex -> index into slots_. */
    std::unordered_map<uint64_t, size_t> slotOfLine_;
    /** Per raw line, 1 + candidate count (for rawStateCount). */
    std::vector<uint64_t> rawChoiceCounts_;
};

} // namespace pmtest::pmem

#endif // PMTEST_PMEM_CRASH_INJECTOR_HH
