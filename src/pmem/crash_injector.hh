/**
 * @file
 * Crash-state construction over the cache model. Used by the Yat-style
 * exhaustive baseline and by property tests that validate PMTest's
 * interval verdicts against ground truth: a crash image is the device
 * image plus, for every unpersisted line, one of the contents that
 * line could legally have reached the device with.
 */

#ifndef PMTEST_PMEM_CRASH_INJECTOR_HH
#define PMTEST_PMEM_CRASH_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "pmem/cache_sim.hh"
#include "util/random.hh"

namespace pmtest::pmem
{

/**
 * Produces crash images from a CacheSim snapshot.
 *
 * Each unpersisted line contributes (1 + #candidates) choices: the
 * content already on the device, or any recorded candidate content.
 * The full space is the cartesian product over lines; enumerate()
 * walks it (optionally capped), sample() draws uniformly at random.
 */
class CrashInjector
{
  public:
    explicit CrashInjector(const CacheSim &cache);

    /** Total number of legal crash states (saturating at cap). */
    uint64_t stateCount(uint64_t cap = UINT64_MAX) const;

    /** Draw one crash image uniformly at random. */
    std::vector<uint8_t> sample(Rng &rng) const;

    /**
     * Enumerate crash images, invoking @p visit for each until all
     * states are visited or @p limit images have been produced.
     * @return number of images visited.
     */
    uint64_t
    enumerate(const std::function<void(const std::vector<uint8_t> &)> &visit,
              uint64_t limit = UINT64_MAX) const;

  private:
    std::vector<uint8_t> baseImage_;
    std::vector<LineCrashChoices> choices_;
};

} // namespace pmtest::pmem

#endif // PMTEST_PMEM_CRASH_INJECTOR_HH
