/**
 * @file
 * Read-set tracking over crash images — the instrument that makes
 * representative crash-state exploration sound.
 *
 * A recovery procedure is deterministic: its execution is fully
 * determined by the sequence of bytes it reads *out of the crash
 * image* before overwriting them itself. Two crash images that agree
 * on exactly those bytes drive recovery through the identical
 * execution and verdict, so one of them can represent both. The
 * ReadSetTracker records that determining read set while a recovery
 * predicate runs:
 *
 *  - every read of a byte the run has not itself written yet is a
 *    *crash read*: its cache line joins the read set (first-read
 *    order preserved), the byte range joins the ordered crash-read
 *    range list, and the observed value folds into a running hash;
 *  - bytes the run wrote before reading are derived data — reading
 *    them back cannot distinguish crash states, so they are masked
 *    out at byte granularity (one 64-bit mask per 64-byte line);
 *  - re-reading an already-recorded crash byte adds no information
 *    and is skipped, keeping the range list minimal.
 *
 * The (ranges, content hash) pair doubles as a memoization key: a
 * candidate image whose bytes match a previous run's crash-read
 * ranges is guaranteed to produce that run's verdict (see
 * PredicateMemo in crash_injector.hh).
 *
 * TrackedImage is the mutable-image accessor recovery code runs
 * against: bounds-checked typed reads and writes over a raw pool
 * image, routing every access through an optional tracker. With a
 * null tracker it compiles down to memcpy plus a bounds check, so
 * the untracked legacy entry points share the same implementation.
 */

#ifndef PMTEST_PMEM_TRACKED_IMAGE_HH
#define PMTEST_PMEM_TRACKED_IMAGE_HH

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "util/logging.hh"

namespace pmtest::pmem
{

/** Records the crash-read set of one recovery execution. */
class ReadSetTracker
{
  public:
    /** One maximal run of crash-read bytes, in first-read order. */
    struct ReadRange
    {
        uint64_t offset = 0;
        uint32_t size = 0;

        bool
        operator==(const ReadRange &o) const
        {
            return offset == o.offset && size == o.size;
        }
    };

    /**
     * Record a read of @p size bytes at @p offset observing
     * @p observed (the image content at read time). Bytes already
     * written or already recorded as crash reads are skipped.
     */
    void
    noteRead(uint64_t offset, size_t size, const uint8_t *observed)
    {
        for (size_t i = 0; i < size; i++) {
            const uint64_t byte = offset + i;
            Masks &m = masks_[byte / kLine];
            const uint64_t bit = uint64_t{1} << (byte % kLine);
            if ((m.written | m.read) & bit)
                continue; // derived data or already recorded
            m.read |= bit;
            if (!(m.lineListed)) {
                m.lineListed = true;
                readLines_.push_back(byte / kLine);
            }
            // Extend the current range or open a new one.
            if (!ranges_.empty() &&
                ranges_.back().offset + ranges_.back().size == byte) {
                ranges_.back().size++;
            } else {
                ranges_.push_back({byte, 1});
            }
            contentHash_ = fnv1a(contentHash_, observed[i]);
            rangeChanged_ = true;
        }
    }

    /**
     * Record a write of @p size bytes at @p offset, with @p old_bytes
     * the image content being overwritten (captured for undo()).
     */
    void
    noteWrite(uint64_t offset, size_t size, const uint8_t *old_bytes)
    {
        undoOps_.push_back(
            {offset, static_cast<uint32_t>(size), undoBytes_.size()});
        undoBytes_.insert(undoBytes_.end(), old_bytes,
                          old_bytes + size);
        for (size_t i = 0; i < size; i++) {
            const uint64_t byte = offset + i;
            masks_[byte / kLine].written |= uint64_t{1}
                                            << (byte % kLine);
        }
    }

    /**
     * Roll back every tracked write in @p image, newest first,
     * restoring the bytes observed at write time. O(bytes written).
     */
    void
    undo(std::vector<uint8_t> &image) const
    {
        for (auto it = undoOps_.rbegin(); it != undoOps_.rend(); ++it) {
            if (it->offset + it->size > image.size())
                panic("ReadSetTracker::undo outside image");
            std::memcpy(image.data() + it->offset,
                        undoBytes_.data() + it->byteStart, it->size);
        }
    }

    /** Cache lines crash-read, in first-read order (unique). */
    const std::vector<uint64_t> &
    readLines() const
    {
        return readLines_;
    }

    /** Whether line @p line_index was crash-read. */
    bool
    lineRead(uint64_t line_index) const
    {
        auto it = masks_.find(line_index);
        return it != masks_.end() && it->second.read != 0;
    }

    /** Crash-read byte ranges in read order. */
    const std::vector<ReadRange> &
    readRanges() const
    {
        return ranges_;
    }

    /** FNV-1a hash of the crash-read bytes, in read order. */
    uint64_t contentHash() const { return contentHash_; }

    /** Signature of the range *positions* (offsets/sizes, ordered). */
    uint64_t
    rangeSignature() const
    {
        if (rangeChanged_) {
            uint64_t sig = kFnvOffset;
            for (const ReadRange &r : ranges_) {
                for (size_t b = 0; b < 8; b++)
                    sig = fnv1a(sig, (r.offset >> (8 * b)) & 0xff);
                for (size_t b = 0; b < 4; b++)
                    sig = fnv1a(sig, (r.size >> (8 * b)) & 0xff);
            }
            rangeSig_ = sig;
            rangeChanged_ = false;
        }
        return rangeSig_;
    }

    /**
     * Hash @p image over a previously recorded range list — the value
     * contentHash() would report for a run whose crash reads observe
     * exactly @p image at those ranges. Ranges outside the image
     * return kNoMatch (never equal to any contentHash).
     */
    static uint64_t
    hashImageOver(const std::vector<uint8_t> &image,
                  const std::vector<ReadRange> &ranges)
    {
        uint64_t hash = kFnvOffset;
        for (const ReadRange &r : ranges) {
            if (r.offset + r.size > image.size())
                return kNoMatch;
            const uint8_t *p = image.data() + r.offset;
            for (uint32_t i = 0; i < r.size; i++)
                hash = fnv1a(hash, p[i]);
        }
        return hash;
    }

    /** Clear everything recorded, keeping allocated capacity. */
    void
    reset()
    {
        masks_.clear();
        readLines_.clear();
        ranges_.clear();
        undoOps_.clear();
        undoBytes_.clear();
        contentHash_ = kFnvOffset;
        rangeSig_ = kFnvOffset;
        rangeChanged_ = false;
    }

    static constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
    /** Sentinel hashImageOver() returns for out-of-bounds ranges. */
    static constexpr uint64_t kNoMatch = 0;

  private:
    static constexpr uint64_t kLine = 64;

    struct Masks
    {
        uint64_t written = 0; ///< bytes written by this run
        uint64_t read = 0;    ///< bytes recorded as crash reads
        bool lineListed = false;
    };

    struct UndoOp
    {
        uint64_t offset;
        uint32_t size;
        size_t byteStart; ///< start of saved bytes in undoBytes_
    };

    static uint64_t
    fnv1a(uint64_t hash, uint8_t byte)
    {
        return (hash ^ byte) * 0x100000001b3ULL;
    }

    std::unordered_map<uint64_t, Masks> masks_;
    std::vector<uint64_t> readLines_;
    std::vector<ReadRange> ranges_;
    std::vector<UndoOp> undoOps_;
    std::vector<uint8_t> undoBytes_;
    uint64_t contentHash_ = kFnvOffset;
    mutable uint64_t rangeSig_ = kFnvOffset;
    mutable bool rangeChanged_ = false;
};

/**
 * Mutable, bounds-checked, optionally tracked accessor over a raw
 * pool image. Recovery procedures take this instead of the raw byte
 * vector so the same implementation serves the untracked legacy
 * entry points and the oracle's read-set-tracked exploration.
 */
class TrackedImage
{
  public:
    explicit TrackedImage(std::vector<uint8_t> &image,
                          ReadSetTracker *tracker = nullptr)
        : image_(image), tracker_(tracker)
    {
    }

    /** Image size in bytes. */
    size_t size() const { return image_.size(); }

    /** Copy @p size bytes at @p offset into @p out. */
    void
    readBytes(uint64_t offset, void *out, size_t size) const
    {
        if (offset + size > image_.size())
            panic("TrackedImage: read outside image");
        if (tracker_)
            tracker_->noteRead(offset, size, image_.data() + offset);
        std::memcpy(out, image_.data() + offset, size);
    }

    /** Read a T at absolute image offset @p offset. */
    template <typename T>
    T
    readAt(uint64_t offset) const
    {
        T value;
        readBytes(offset, &value, sizeof(T));
        return value;
    }

    /** Write @p size bytes from @p data at @p offset. */
    void
    writeBytes(uint64_t offset, const void *data, size_t size)
    {
        if (offset + size > image_.size())
            panic("TrackedImage: write outside image");
        if (tracker_)
            tracker_->noteWrite(offset, size,
                                image_.data() + offset);
        std::memcpy(image_.data() + offset, data, size);
    }

    /** Write a T at absolute image offset @p offset. */
    template <typename T>
    void
    writeAt(uint64_t offset, const T &value)
    {
        writeBytes(offset, &value, sizeof(T));
    }

    /**
     * The raw image. Accesses through this reference bypass
     * tracking — callers must route them through the tracker
     * themselves (e.g. ImageView's tracker parameter).
     */
    std::vector<uint8_t> &raw() { return image_; }
    const std::vector<uint8_t> &raw() const { return image_; }

    /** The attached tracker (null when untracked). */
    ReadSetTracker *tracker() const { return tracker_; }

  private:
    std::vector<uint8_t> &image_;
    ReadSetTracker *tracker_;
};

} // namespace pmtest::pmem

#endif // PMTEST_PMEM_TRACKED_IMAGE_HH
