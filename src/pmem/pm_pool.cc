#include "pmem/pm_pool.hh"

#include "util/logging.hh"

namespace pmtest::pmem
{

namespace
{
constexpr size_t kAlign = 16;

size_t
alignUp(size_t n)
{
    return (n + kAlign - 1) & ~(kAlign - 1);
}
} // namespace

PmPool::PmPool(size_t size, bool simulate_crashes) : buffer_(size, 0)
{
    if (size <= kRootSize)
        fatal("PmPool: pool size must exceed the root area");
    freeList_[kRootSize] = size - kRootSize;
    if (simulate_crashes) {
        device_ = std::make_unique<PmDevice>(size);
        cache_ = std::make_unique<CacheSim>(*device_);
    }
}

uint64_t
PmPool::offsetOf(const void *ptr) const
{
    const auto *p = static_cast<const uint8_t *>(ptr);
    if (p < buffer_.data() || p >= buffer_.data() + buffer_.size())
        panic("PmPool::offsetOf: pointer outside pool");
    return static_cast<uint64_t>(p - buffer_.data());
}

void *
PmPool::at(uint64_t offset)
{
    if (offset >= buffer_.size())
        panic("PmPool::at: offset outside pool");
    return buffer_.data() + offset;
}

const void *
PmPool::at(uint64_t offset) const
{
    if (offset >= buffer_.size())
        panic("PmPool::at: offset outside pool");
    return buffer_.data() + offset;
}

bool
PmPool::contains(const void *ptr) const
{
    const auto *p = static_cast<const uint8_t *>(ptr);
    return p >= buffer_.data() && p < buffer_.data() + buffer_.size();
}

uint64_t
PmPool::alloc(size_t size)
{
    const size_t need = alignUp(size == 0 ? 1 : size);
    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        if (it->second < need)
            continue;
        const uint64_t offset = it->first;
        const size_t remaining = it->second - need;
        freeList_.erase(it);
        if (remaining > 0)
            freeList_[offset + need] = remaining;
        live_[offset] = need;
        allocatedBytes_ += need;
        return offset;
    }
    fatal("PmPool: out of memory (requested " + std::to_string(size) +
          " bytes, " + std::to_string(allocatedBytes_) + " allocated)");
}

void
PmPool::free(uint64_t offset)
{
    auto it = live_.find(offset);
    if (it == live_.end())
        panic("PmPool::free: not an allocation start: " +
              std::to_string(offset));
    size_t len = it->second;
    live_.erase(it);
    allocatedBytes_ -= len;

    // Coalesce with the next free range.
    auto next = freeList_.lower_bound(offset);
    if (next != freeList_.end() && offset + len == next->first) {
        len += next->second;
        next = freeList_.erase(next);
    }
    // Coalesce with the previous free range.
    if (next != freeList_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == offset) {
            prev->second += len;
            return;
        }
    }
    freeList_[offset] = len;
}

} // namespace pmtest::pmem
