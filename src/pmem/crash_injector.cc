#include "pmem/crash_injector.hh"

#include <cstring>

namespace pmtest::pmem
{

CrashInjector::CrashInjector(const CacheSim &cache)
    : baseImage_(cache.device().image()), choices_(cache.crashChoices())
{
}

uint64_t
CrashInjector::stateCount(uint64_t cap) const
{
    uint64_t count = 1;
    for (const auto &c : choices_) {
        const uint64_t per_line = 1 + c.candidates.size();
        if (count > cap / per_line)
            return cap;
        count *= per_line;
    }
    return count;
}

std::vector<uint8_t>
CrashInjector::sample(Rng &rng) const
{
    std::vector<uint8_t> image = baseImage_;
    for (const auto &c : choices_) {
        const uint64_t pick = rng.below(1 + c.candidates.size());
        if (pick == 0)
            continue; // line did not reach the device; keep old content
        const LineData &data = c.candidates[pick - 1];
        std::memcpy(image.data() + c.lineIndex * kLineSize, data.data(),
                    kLineSize);
    }
    return image;
}

uint64_t
CrashInjector::enumerate(
    const std::function<void(const std::vector<uint8_t> &)> &visit,
    uint64_t limit) const
{
    // Odometer walk over the per-line choice space.
    std::vector<size_t> pick(choices_.size(), 0);
    uint64_t visited = 0;

    while (visited < limit) {
        std::vector<uint8_t> image = baseImage_;
        for (size_t i = 0; i < choices_.size(); i++) {
            if (pick[i] == 0)
                continue;
            const LineData &data = choices_[i].candidates[pick[i] - 1];
            std::memcpy(image.data() + choices_[i].lineIndex * kLineSize,
                        data.data(), kLineSize);
        }
        visit(image);
        visited++;

        // Advance the odometer; stop after the last combination.
        size_t i = 0;
        for (; i < pick.size(); i++) {
            if (pick[i] < choices_[i].candidates.size()) {
                pick[i]++;
                break;
            }
            pick[i] = 0;
        }
        if (i == pick.size())
            break;
    }
    return visited;
}

} // namespace pmtest::pmem
