#include "pmem/crash_injector.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace pmtest::pmem
{

namespace
{

uint64_t
satMul(uint64_t a, uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    if (a > UINT64_MAX / b)
        return UINT64_MAX;
    return a * b;
}

uint64_t
satAdd(uint64_t a, uint64_t b)
{
    return (a > UINT64_MAX - b) ? UINT64_MAX : a + b;
}

} // namespace

CrashInjector::CrashInjector(const CacheSim &cache, bool copy_base_image)
{
    const std::vector<uint8_t> &device = cache.device().image();
    if (copy_base_image)
        baseImage_ = device;

    // Canonicalize: device content is always choice 0; candidates
    // equal to it (or to each other) collapse, and a line whose every
    // choice is the device content cannot distinguish crash states.
    for (const LineCrashChoices &c : cache.crashChoices()) {
        rawChoiceCounts_.push_back(1 + c.candidates.size());

        Slot slot;
        slot.lineIndex = c.lineIndex;
        LineData device_line(kLineSize);
        std::memcpy(device_line.data(),
                    device.data() + c.lineIndex * kLineSize, kLineSize);
        slot.contents.push_back(std::move(device_line));
        for (const LineData &cand : c.candidates) {
            if (std::find(slot.contents.begin(), slot.contents.end(),
                          cand) == slot.contents.end())
                slot.contents.push_back(cand);
        }
        if (slot.contents.size() <= 1)
            continue;
        slotOfLine_.emplace(slot.lineIndex, slots_.size());
        slots_.push_back(std::move(slot));
    }
}

uint64_t
CrashInjector::stateCount(uint64_t cap) const
{
    uint64_t count = 1;
    for (const Slot &slot : slots_) {
        const uint64_t per_line = slot.contents.size();
        if (count > cap / per_line)
            return cap;
        count *= per_line;
    }
    return count;
}

uint64_t
CrashInjector::rawStateCount(uint64_t cap) const
{
    uint64_t count = 1;
    for (const uint64_t per_line : rawChoiceCounts_) {
        if (count > cap / per_line)
            return cap;
        count *= per_line;
    }
    return count;
}

void
CrashInjector::applyLine(std::vector<uint8_t> &image, const Slot &slot,
                         size_t pick) const
{
    std::memcpy(image.data() + slot.lineIndex * kLineSize,
                slot.contents[pick].data(), kLineSize);
}

std::vector<uint8_t>
CrashInjector::sample(Rng &rng) const
{
    if (baseImage_.empty())
        panic("CrashInjector::sample needs a base image copy");
    std::vector<uint8_t> image = baseImage_;
    for (const Slot &slot : slots_) {
        const uint64_t pick = rng.below(slot.contents.size());
        if (pick != 0)
            applyLine(image, slot, pick);
    }
    return image;
}

uint64_t
CrashInjector::enumerate(
    const std::function<void(const std::vector<uint8_t> &)> &visit,
    uint64_t limit) const
{
    if (baseImage_.empty())
        panic("CrashInjector::enumerate needs a base image copy");
    if (limit == 0)
        return 0;

    // Odometer walk with one working buffer: each advance rewrites
    // only the lines whose pick changed (O(changed lines) per state).
    std::vector<uint8_t> image = baseImage_;
    std::vector<size_t> pick(slots_.size(), 0);
    uint64_t visited = 0;

    for (;;) {
        visit(image);
        visited++;
        if (visited >= limit)
            break;

        size_t i = 0;
        for (; i < slots_.size(); i++) {
            if (pick[i] + 1 < slots_[i].contents.size()) {
                pick[i]++;
                applyLine(image, slots_[i], pick[i]);
                break;
            }
            pick[i] = 0;
            applyLine(image, slots_[i], 0);
        }
        if (i == slots_.size())
            break;
    }
    return visited;
}

bool
CrashInjector::runPredicate(std::vector<uint8_t> &working,
                            const TrackedPredicate &predicate,
                            ReadSetTracker &tracker) const
{
    tracker.reset();
    TrackedImage image(working, &tracker);
    const bool verdict = predicate(image);
    tracker.undo(working);
    return verdict;
}

CrashInjector::ExploreResult
CrashInjector::explore(std::vector<uint8_t> &working,
                       const TrackedPredicate &predicate,
                       const ExploreOptions &opts) const
{
    for (const Slot &slot : slots_) {
        if ((slot.lineIndex + 1) * kLineSize > working.size())
            panic("CrashInjector::explore: working image too small");
    }
    return opts.representative
               ? exploreRepresentative(working, predicate, opts)
               : exploreExhaustive(working, predicate, opts);
}

CrashInjector::ExploreResult
CrashInjector::exploreExhaustive(std::vector<uint8_t> &working,
                                 const TrackedPredicate &predicate,
                                 const ExploreOptions &opts) const
{
    ExploreResult r;
    ReadSetTracker tracker;
    std::vector<size_t> pick(slots_.size(), 0);

    for (;;) {
        bool verdict;
        const PredicateMemo::Entry *hit =
            opts.memo ? opts.memo->lookup(working) : nullptr;
        if (hit) {
            r.memoHits++;
            verdict = hit->verdict;
        } else {
            verdict = runPredicate(working, predicate, tracker);
            if (opts.memo)
                opts.memo->insert(tracker, verdict);
        }
        r.statesTested++;
        r.statesCovered = satAdd(r.statesCovered, 1);
        if (!verdict)
            r.failures = satAdd(r.failures, 1);

        size_t i = 0;
        for (; i < slots_.size(); i++) {
            if (pick[i] + 1 < slots_[i].contents.size()) {
                pick[i]++;
                applyLine(working, slots_[i], pick[i]);
                break;
            }
            pick[i] = 0;
            applyLine(working, slots_[i], 0);
        }
        if (i == slots_.size())
            break; // odometer wrapped; working is back at the base

        if (r.statesTested >= opts.stateCap) {
            r.truncated = true;
            for (size_t s = 0; s < slots_.size(); s++) {
                if (pick[s] != 0)
                    applyLine(working, slots_[s], 0);
            }
            break;
        }
    }
    return r;
}

CrashInjector::ExploreResult
CrashInjector::exploreRepresentative(std::vector<uint8_t> &working,
                                     const TrackedPredicate &predicate,
                                     const ExploreOptions &opts) const
{
    ExploreResult r;

    // The decision stack holds, in first-read order, the unpersisted
    // lines recovery has observed on the current path, each with its
    // assigned pick. Lines not on the stack sit at choice 0 (device
    // content) in the working image. Because recovery is
    // deterministic, runs sharing the stacked observations execute
    // identically up to the deepest stacked read — so the stack is
    // always a prefix of the next run's read order and only ever
    // grows by appending newly-read lines.
    struct Decision
    {
        size_t slot;
        size_t pick;
    };
    std::vector<Decision> stack;
    std::vector<char> onStack(slots_.size(), 0);
    ReadSetTracker tracker;

    for (;;) {
        bool verdict;
        const std::vector<uint64_t> *read_lines;
        const PredicateMemo::Entry *hit =
            opts.memo ? opts.memo->lookup(working) : nullptr;
        if (hit) {
            r.memoHits++;
            verdict = hit->verdict;
            read_lines = &hit->readLines;
        } else {
            verdict = runPredicate(working, predicate, tracker);
            if (opts.memo)
                opts.memo->insert(tracker, verdict);
            read_lines = &tracker.readLines();
        }

        for (const uint64_t line : *read_lines) {
            auto it = slotOfLine_.find(line);
            if (it == slotOfLine_.end())
                continue; // persisted line: no choice to make
            if (!onStack[it->second]) {
                onStack[it->second] = 1;
                stack.push_back({it->second, 0});
            }
        }

        // Every state differing only in unread lines recovers
        // identically: this run represents their whole cross product.
        uint64_t weight = 1;
        for (size_t s = 0; s < slots_.size(); s++) {
            if (!onStack[s])
                weight = satMul(weight, slots_[s].contents.size());
        }

        r.statesTested++;
        r.statesCovered = satAdd(r.statesCovered, weight);
        if (!verdict)
            r.failures = satAdd(r.failures, weight);

        // Depth-first advance: bump the deepest decision with picks
        // left; exhausted decisions revert to the device content and
        // pop (their subtree is fully covered).
        while (!stack.empty()) {
            Decision &d = stack.back();
            if (d.pick + 1 < slots_[d.slot].contents.size()) {
                d.pick++;
                applyLine(working, slots_[d.slot], d.pick);
                break;
            }
            applyLine(working, slots_[d.slot], 0);
            onStack[d.slot] = 0;
            stack.pop_back();
        }
        if (stack.empty())
            break; // space exhausted; working is back at the base

        if (r.statesTested >= opts.stateCap) {
            r.truncated = true;
            for (const Decision &d : stack)
                applyLine(working, slots_[d.slot], 0);
            break;
        }
    }
    return r;
}

} // namespace pmtest::pmem
