/**
 * @file
 * Simulated persistent-memory device: the durable image of a PM
 * region. The paper's testbed used battery-backed NVDIMMs; here the
 * durable state is an explicit byte array so crash states can be
 * constructed and inspected exactly (see DESIGN.md, substitution
 * table). Only data that the cache model has written back lives here.
 */

#ifndef PMTEST_PMEM_PM_DEVICE_HH
#define PMTEST_PMEM_PM_DEVICE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pmtest::pmem
{

/**
 * A byte-addressable persistent device of fixed size. Addresses are
 * offsets into the region ([0, size)). All accesses are bounds-checked
 * (panic on violation: an out-of-range device access is a framework
 * bug, not a user error).
 */
class PmDevice
{
  public:
    /** Create a device of @p size bytes, zero-initialized. */
    explicit PmDevice(size_t size);

    /** Region size in bytes. */
    size_t size() const { return image_.size(); }

    /** Copy @p size bytes at @p offset into @p out. */
    void read(uint64_t offset, void *out, size_t size) const;

    /** Persist @p size bytes from @p data at @p offset. */
    void write(uint64_t offset, const void *data, size_t size);

    /** Read a single byte. */
    uint8_t byteAt(uint64_t offset) const;

    /** The whole durable image (for crash-state construction). */
    const std::vector<uint8_t> &image() const { return image_; }

    /** Replace the durable image (used when restoring snapshots). */
    void setImage(std::vector<uint8_t> image);

    /** Number of write() calls served (media-write statistic). */
    uint64_t mediaWrites() const { return mediaWrites_; }

    /** One logged media write (see enableWriteLog). */
    struct WriteRecord
    {
        uint64_t offset;
        uint32_t size;
    };

    /**
     * Start logging the (offset, size) of every write(). The oracle
     * uses the log to keep a mirror of the image in sync between
     * crash points without re-copying the pool.
     */
    void enableWriteLog() { logWrites_ = true; }

    /** Drain the write log accumulated since the last take. */
    std::vector<WriteRecord>
    takeWriteLog()
    {
        std::vector<WriteRecord> out;
        out.swap(writeLog_);
        return out;
    }

  private:
    void checkRange(uint64_t offset, size_t size) const;

    std::vector<uint8_t> image_;
    uint64_t mediaWrites_ = 0;
    bool logWrites_ = false;
    std::vector<WriteRecord> writeLog_;
};

} // namespace pmtest::pmem

#endif // PMTEST_PMEM_PM_DEVICE_HH
