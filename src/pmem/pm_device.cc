#include "pmem/pm_device.hh"

#include <cstring>

#include "util/logging.hh"

namespace pmtest::pmem
{

PmDevice::PmDevice(size_t size) : image_(size, 0) {}

void
PmDevice::checkRange(uint64_t offset, size_t size) const
{
    if (offset > image_.size() || size > image_.size() - offset) {
        panic("PmDevice access out of range: offset=" +
              std::to_string(offset) + " size=" + std::to_string(size) +
              " device=" + std::to_string(image_.size()));
    }
}

void
PmDevice::read(uint64_t offset, void *out, size_t size) const
{
    checkRange(offset, size);
    std::memcpy(out, image_.data() + offset, size);
}

void
PmDevice::write(uint64_t offset, const void *data, size_t size)
{
    checkRange(offset, size);
    std::memcpy(image_.data() + offset, data, size);
    mediaWrites_++;
    if (logWrites_)
        writeLog_.push_back({offset, static_cast<uint32_t>(size)});
}

uint8_t
PmDevice::byteAt(uint64_t offset) const
{
    checkRange(offset, 1);
    return image_[offset];
}

void
PmDevice::setImage(std::vector<uint8_t> image)
{
    if (image.size() != image_.size())
        panic("PmDevice::setImage size mismatch");
    image_ = std::move(image);
    if (logWrites_)
        writeLog_.push_back({0, static_cast<uint32_t>(image_.size())});
}

} // namespace pmtest::pmem
